#include "pattern/algebra.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pcdb {
namespace {

/// Collects output patterns with deduplication.
class DedupSink {
 public:
  void Add(Pattern p) {
    if (seen_.insert(p).second) out_.Add(std::move(p));
  }
  PatternSet Take() { return std::move(out_); }

 private:
  std::unordered_set<Pattern, PatternHash> seen_;
  PatternSet out_;
};

}  // namespace

PatternSet PatternSelectConst(const PatternSet& input, size_t attr,
                              const Value& d) {
  DedupSink sink;
  for (const Pattern& p : input) {
    PCDB_CHECK(attr < p.arity());
    if (p.IsWildcard(attr)) {
      sink.Add(p);
    } else if (p.value(attr) == d) {
      sink.Add(p.WithWildcard(attr));
    }
    // Other constants: irrelevant for the selection output.
  }
  return sink.Take();
}

PatternSet PatternProjectOut(const PatternSet& input, size_t attr) {
  DedupSink sink;
  for (const Pattern& p : input) {
    PCDB_CHECK(attr < p.arity());
    if (p.IsWildcard(attr)) {
      sink.Add(p.WithoutPosition(attr));
    }
  }
  return sink.Take();
}

PatternSet PatternSelectAttrEq(const PatternSet& input, size_t attr_a,
                               size_t attr_b) {
  // σ_{A=A} is the identity on the data — and must be on the metadata:
  // the (A≠B) rules below would unsoundly generalize constants at A.
  if (attr_a == attr_b) return input;
  DedupSink sink;
  for (const Pattern& p : input) {
    PCDB_CHECK(attr_a < p.arity() && attr_b < p.arity());
    const bool wild_a = p.IsWildcard(attr_a);
    const bool wild_b = p.IsWildcard(attr_b);
    if (wild_a || wild_b) {
      sink.Add(p);
      // The swapped twin is semantically equivalent over the selection
      // output but must be materialized so that later projections of
      // either attribute keep one version (§4.1.3).
      sink.Add(p.WithSwapped(attr_a, attr_b));
    } else if (p.value(attr_a) == p.value(attr_b)) {
      sink.Add(p.WithWildcard(attr_a));
      sink.Add(p.WithWildcard(attr_b));
    }
    // Distinct constants at A and B: the pattern cannot subsume any
    // output row; dropped (see zombie.h for the extension that keeps
    // such knowledge).
  }
  return sink.Take();
}

PatternSet PatternRearrange(const PatternSet& input,
                            const std::vector<size_t>& indices) {
  DedupSink sink;
  for (const Pattern& p : input) {
    // Positions absent from `indices` are projected away: as with
    // π̃_{¬A}, the pattern must hold '*' there — a constant means
    // completeness of a slice the output cannot distinguish. (Found by
    // the expression fuzzer: mapping cells blindly was unsound for
    // SELECT lists that drop columns.)
    std::vector<bool> kept(p.arity(), false);
    for (size_t i : indices) {
      PCDB_CHECK(i < p.arity());
      kept[i] = true;
    }
    bool survives = true;
    for (size_t i = 0; i < p.arity(); ++i) {
      if (!kept[i] && !p.IsWildcard(i)) {
        survives = false;
        break;
      }
    }
    if (!survives) continue;
    std::vector<Pattern::Cell> cells;
    cells.reserve(indices.size());
    for (size_t i : indices) cells.push_back(p.cell(i));
    sink.Add(Pattern(std::move(cells)));
  }
  return sink.Take();
}

PatternSet PatternCross(const PatternSet& left, const PatternSet& right) {
  DedupSink sink;
  for (const Pattern& l : left) {
    for (const Pattern& r : right) {
      sink.Add(l.Concat(r));
    }
  }
  return sink.Take();
}

namespace {

/// Emits the σ̃_{A=B} results for one concatenated pattern pair, where
/// `a` and `b` are the two join positions in the combined pattern.
void EmitJoinedPair(const Pattern& combined, size_t a, size_t b,
                    DedupSink* sink) {
  const bool wild_a = combined.IsWildcard(a);
  const bool wild_b = combined.IsWildcard(b);
  if (wild_a || wild_b) {
    sink->Add(combined);
    sink->Add(combined.WithSwapped(a, b));
  } else if (combined.value(a) == combined.value(b)) {
    sink->Add(combined.WithWildcard(a));
    sink->Add(combined.WithWildcard(b));
  }
}

}  // namespace

PatternSet PatternJoin(const PatternSet& left, size_t attr_a,
                       const PatternSet& right, size_t attr_b,
                       PatternJoinStrategy strategy, ThreadPool* pool) {
  if (left.empty() || right.empty()) return PatternSet();
  const size_t left_arity = left[0].arity();
  const size_t a = attr_a;
  const size_t b = left_arity + attr_b;
  DedupSink sink;

  if (strategy == PatternJoinStrategy::kCrossProductSelect) {
    // Literal definition: materialize P × P', then select.
    PatternSet cross = PatternCross(left, right);
    for (const Pattern& combined : cross) {
      EmitJoinedPair(combined, a, b, &sink);
    }
    return sink.Take();
  }

  // Partitioned form: split both sides into the wildcard partition and
  // per-constant partitions on the join attribute, then combine
  // (*,*) ∪ (*,d) ∪ (d,*) ∪ (d,d).
  std::vector<const Pattern*> left_wild;
  std::vector<const Pattern*> right_wild;
  std::vector<const Pattern*> right_all;
  std::unordered_map<Value, std::vector<const Pattern*>, ValueHash> left_by;
  std::unordered_map<Value, std::vector<const Pattern*>, ValueHash> right_by;
  for (const Pattern& p : left) {
    PCDB_CHECK(attr_a < p.arity());
    if (p.IsWildcard(attr_a)) {
      left_wild.push_back(&p);
    } else {
      left_by[p.value(attr_a)].push_back(&p);
    }
  }
  for (const Pattern& p : right) {
    PCDB_CHECK(attr_b < p.arity());
    right_all.push_back(&p);
    if (p.IsWildcard(attr_b)) {
      right_wild.push_back(&p);
    } else {
      right_by[p.value(attr_b)].push_back(&p);
    }
  }

  // One unit per left pattern: its partition-mate span on the right.
  struct JoinUnit {
    const Pattern* l;
    const std::vector<const Pattern*>* rs;
  };
  std::vector<JoinUnit> units;
  units.reserve(left.size());
  // (*,*) and (*,d): left wildcard joins with everything.
  for (const Pattern* l : left_wild) units.push_back({l, &right_all});
  // (d,*) and (d,d): constant left with the wildcard partition and its
  // matching constant partition.
  for (const auto& [value, ls] : left_by) {
    auto it = right_by.find(value);
    const std::vector<const Pattern*>* match =
        it == right_by.end() ? nullptr : &it->second;
    for (const Pattern* l : ls) {
      units.push_back({l, &right_wild});
      if (match != nullptr) units.push_back({l, match});
    }
  }

  auto run_units = [&](size_t begin, size_t end, DedupSink* out) {
    for (size_t u = begin; u < end; ++u) {
      const Pattern& l = *units[u].l;
      for (const Pattern* r : *units[u].rs) {
        EmitJoinedPair(l.Concat(*r), a, b, out);
      }
    }
  };

  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  // Units are heavily skewed: a wildcard-side unit spans the whole right
  // set while a constant-partition unit may span a handful of patterns.
  // Size-aware chunking keeps the heavy units from serializing behind
  // runs of light ones.
  std::vector<size_t> unit_weights(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    unit_weights[u] = units[u].rs->size() + 1;
  }
  const std::vector<IndexRange> ranges = WeightedChunkRanges(
      unit_weights, ParallelChunkCount(threads, units.size()));
  if (ranges.size() <= 1) {
    run_units(0, units.size(), &sink);
    return sink.Take();
  }
  // Fan out: contiguous unit chunks, one private sink per chunk, merged
  // in chunk order so the output is deterministic. PatternJoin's
  // signature has no error channel, so an injected dispatch fault
  // (pool.dispatch failpoint) is absorbed by recomputing serially into a
  // fresh sink — the partial chunk sinks may be half-filled, the fresh
  // sink is not.
  std::vector<DedupSink> partial(ranges.size());
  Status status = TryParallelForRanges(
      pool, ranges, [&](size_t c, IndexRange r) -> Status {
        run_units(r.begin, r.end, &partial[c]);
        return Status::OK();
      });
  if (!status.ok()) {
    DedupSink serial;
    run_units(0, units.size(), &serial);
    for (const Pattern& q : serial.Take()) sink.Add(q);
    return sink.Take();
  }
  for (DedupSink& p : partial) {
    for (const Pattern& q : p.Take()) sink.Add(q);
  }
  return sink.Take();
}

PatternSet PatternUnion(const PatternSet& left, const PatternSet& right) {
  DedupSink sink;
  for (const Pattern& l : left) {
    for (const Pattern& r : right) {
      if (l.UnifiableWith(r)) sink.Add(l.UnifyWith(r));
    }
  }
  return sink.Take();
}

PatternSet PatternLimit(const PatternSet& input) {
  for (const Pattern& p : input) {
    if (p.IsAllWildcards()) return input;
  }
  return PatternSet();
}

PatternSet PatternAggregate(const PatternSet& input,
                            const std::vector<size_t>& group_by,
                            size_t num_aggs) {
  DedupSink sink;
  for (const Pattern& p : input) {
    // The pattern must not constrain any attribute that the grouping
    // collapses away: a constant outside the group-by attributes means
    // completeness of a slice only, which says nothing about whole
    // groups.
    bool survives = true;
    for (size_t i = 0; i < p.arity() && survives; ++i) {
      bool grouped = false;
      for (size_t g : group_by) {
        if (g == i) {
          grouped = true;
          break;
        }
      }
      if (!grouped && !p.IsWildcard(i)) survives = false;
    }
    if (!survives) continue;
    std::vector<Pattern::Cell> cells;
    cells.reserve(group_by.size() + num_aggs);
    for (size_t g : group_by) {
      PCDB_CHECK(g < p.arity());
      cells.push_back(p.cell(g));
    }
    for (size_t k = 0; k < num_aggs; ++k) {
      cells.push_back(Pattern::Wildcard());
    }
    sink.Add(Pattern(std::move(cells)));
  }
  return sink.Take();
}

}  // namespace pcdb
