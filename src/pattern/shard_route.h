#ifndef PCDB_PATTERN_SHARD_ROUTE_H_
#define PCDB_PATTERN_SHARD_ROUTE_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/value.h"
#include "pattern/pattern.h"
#include "pattern/signature.h"

/// \file
/// Deterministic shard routing for distributed pcdb (docs/DISTRIBUTED.md).
///
/// Two placement functions, shared by every process that must agree on
/// ownership — the coordinator (src/dist/), shard-mode servers
/// (src/server/server.cc) and the shard-mode seeding in pcdbd:
///
///  - rows of a hash-partitioned table are placed by a stable FNV-1a
///    hash over the row's type-tagged canonical bytes (host-endianness
///    independent, so a coordinator and a shard built on different
///    machines still agree);
///  - completeness statements of a hash-partitioned table are placed by
///    their *constant-position signature* (pattern/signature.h) — the
///    same key ParallelMinimize shards on, so a shard's statement
///    partition is exactly a union of signature groups.
///
/// Both live below the server layer on purpose: the server may not
/// include src/dist/ (the dist-layering rule), yet shard-mode write
/// filtering needs the very same placement the coordinator uses.

namespace pcdb {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvMix(uint64_t h, uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

inline uint64_t FnvMixU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = FnvMix(h, (v >> (8 * i)) & 0xff);
  return h;
}

/// Stable content hash of one value: a type tag followed by the value's
/// canonical little-endian bytes. Doubles hash by bit pattern, so the
/// hash distinguishes exactly what Value::operator== distinguishes.
inline uint64_t StableValueHash(uint64_t h, const Value& v) {
  h = FnvMix(h, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      return FnvMixU64(h, static_cast<uint64_t>(v.int64()));
    case ValueType::kDouble:
      return FnvMixU64(h, std::bit_cast<uint64_t>(v.dbl()));
    case ValueType::kString: {
      const std::string& s = v.str();
      h = FnvMixU64(h, s.size());
      for (char c : s) h = FnvMix(h, static_cast<uint8_t>(c));
      return h;
    }
  }
  return h;
}

/// Arity is mixed in first so a 1-tuple and its padding-equivalent
/// 2-tuple cannot collide structurally.
inline constexpr uint64_t FnvOffsetBasisForArity(size_t arity) {
  uint64_t h = kFnvOffsetBasis;
  h = (h ^ (arity & 0xff)) * kFnvPrime;
  return h;
}

/// Stable content hash of a whole row.
inline uint64_t StableTupleHash(const Tuple& row) {
  uint64_t h = FnvOffsetBasisForArity(row.size());
  for (const Value& v : row) h = StableValueHash(h, v);
  return h;
}

/// Shard owning `row` under `num_shards`-way hash partitioning.
/// num_shards == 0 is treated as 1 (everything on shard 0).
inline uint32_t ShardForRow(const Tuple& row, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(StableTupleHash(row) % num_shards);
}

/// Shard owning a completeness statement: its constant-position
/// signature, folded through FNV-1a so the (low-bit-heavy) signature
/// values spread across shards. Every pattern of one signature group
/// lands on one shard — the invariant the per-shard local minimization
/// soundness argument rests on (docs/DISTRIBUTED.md).
inline uint32_t ShardForSignature(uint64_t signature, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(FnvMixU64(kFnvOffsetBasis, signature) %
                               num_shards);
}

inline uint32_t ShardForPattern(const Pattern& p, uint32_t num_shards) {
  return ShardForSignature(PatternConstantSignature(p), num_shards);
}

}  // namespace pcdb

#endif  // PCDB_PATTERN_SHARD_ROUTE_H_
