#ifndef PCDB_PATTERN_ZOMBIE_H_
#define PCDB_PATTERN_ZOMBIE_H_

#include <vector>

#include "pattern/pattern.h"
#include "relational/table.h"

namespace pcdb {

/// \brief Zombie patterns (Appendix E): explicit completeness assertions
/// for values that can currently not appear in an operator's result.
///
/// A pattern like (∗, software) over σ_{spec=hardware}(Teams) is
/// trivially satisfied — no software team can survive the selection —
/// yet carrying it forward lets later joins promote over values the
/// current result misses, recovering inferences the plain instance-aware
/// algebra cannot make (Example 10). The paper measures ≈250 % runtime
/// overhead and only rare extra inferences (~0.08 % in 3-way joins), so
/// zombie generation is opt-in (AnnotatedEvalOptions::zombies).

/// Zombies introduced by σ_{A=d} (instance-independent): one pattern per
/// other domain value c — c at position `attr`, '*' elsewhere.
PatternSet ZombiesForSelectConst(size_t arity, size_t attr, const Value& d,
                                 const std::vector<Value>& domain);

/// addZombies (Appendix E.1), one join side: for every pattern p of this
/// side with '*' at the join attribute, and every domain value d absent
/// from the side's data column, the join result can never contain a row
/// matching p[A/d] on this side — emit p[A/d] extended with '*' across
/// the other side. `side_is_left` selects whether the '*' padding is
/// appended (left side) or prepended (right side).
PatternSet ZombiesForJoin(const PatternSet& side_patterns, size_t attr,
                          const Table& side_data,
                          const std::vector<Value>& domain,
                          size_t other_arity, bool side_is_left);

}  // namespace pcdb

#endif  // PCDB_PATTERN_ZOMBIE_H_
