#include "pattern/pattern_index.h"

#include "common/logging.h"
#include "pattern/discrimination_tree.h"
#include "pattern/hash_index.h"
#include "pattern/linear_index.h"
#include "pattern/path_index.h"

namespace pcdb {

const char* PatternIndexKindName(PatternIndexKind kind) {
  switch (kind) {
    case PatternIndexKind::kLinearList:
      return "linear list";
    case PatternIndexKind::kHashTable:
      return "hash table";
    case PatternIndexKind::kPathIndex:
      return "path index";
    case PatternIndexKind::kDiscriminationTree:
      return "discrimination tree";
  }
  return "?";
}

const char* PatternIndexKindLetter(PatternIndexKind kind) {
  switch (kind) {
    case PatternIndexKind::kLinearList:
      return "A";
    case PatternIndexKind::kHashTable:
      return "B";
    case PatternIndexKind::kPathIndex:
      return "C";
    case PatternIndexKind::kDiscriminationTree:
      return "D";
  }
  return "?";
}

std::unique_ptr<PatternIndex> MakePatternIndex(PatternIndexKind kind,
                                               size_t arity) {
  switch (kind) {
    case PatternIndexKind::kLinearList:
      return std::make_unique<LinearIndex>(arity);
    case PatternIndexKind::kHashTable:
      return std::make_unique<HashIndex>(arity);
    case PatternIndexKind::kPathIndex:
      return std::make_unique<PathIndex>(arity);
    case PatternIndexKind::kDiscriminationTree:
      return std::make_unique<DiscriminationTree>(arity);
  }
  PCDB_CHECK(false) << "unknown index kind";
  return nullptr;
}

}  // namespace pcdb
