#ifndef PCDB_PATTERN_PATTERN_INDEX_H_
#define PCDB_PATTERN_PATTERN_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace pcdb {

/// \brief Index structures over sets of completeness patterns (§4.4).
///
/// Pattern set minimization needs two primitives:
///   * subsumption checking — is a pattern p subsumed by some stored
///     pattern (HasSubsumer)?
///   * supersumption retrieval — which stored patterns does p subsume
///     (CollectSubsumed)?
/// The paper evaluates four structures: (A) plain lists, (B) hash tables,
/// (C) path indexes, and (D) discrimination trees; the latter two are
/// borrowed from term indexing in theorem provers [McCune '92].
///
/// Indexes have set semantics: inserting a duplicate pattern is a no-op.
/// All patterns in one index must share an arity.
///
/// Concurrency contract: implementations are thread-compatible, not
/// thread-safe — concurrent const queries on a quiescent index are
/// fine, but Insert/Remove require external exclusion. The parallel
/// layers honour this by construction instead of locking: each
/// ParallelMinimize shard builds and mutates a private index (one task
/// per shard, merged after ThreadPool::Wait), so no index is ever shared
/// across threads. tools/pcdb_lint.py keeps raw std::mutex out of these
/// classes; any future internal locking must go through the annotated
/// pcdb::Mutex so Clang Thread Safety Analysis can see it.
class PatternIndex {
 public:
  virtual ~PatternIndex() = default;

  /// Inserts `p` unless an identical pattern is present.
  virtual void Insert(const Pattern& p) = 0;

  /// Removes `p` if present; returns whether it was found.
  virtual bool Remove(const Pattern& p) = 0;

  /// Subsumption check: is there a stored q that subsumes `p`? With
  /// `strict`, q == p does not count.
  virtual bool HasSubsumer(const Pattern& p, bool strict) const = 0;

  /// Supersumption retrieval: appends every stored q that `p` subsumes.
  /// With `strict`, q == p is excluded.
  virtual void CollectSubsumed(const Pattern& p, bool strict,
                               std::vector<Pattern>* out) const = 0;

  /// Appends every stored q that subsumes `p` (generalization retrieval;
  /// the enumerating counterpart of HasSubsumer). With `strict`, q == p
  /// is excluded.
  virtual void CollectSubsumers(const Pattern& p, bool strict,
                                std::vector<Pattern>* out) const = 0;

  /// Number of stored patterns.
  virtual size_t size() const = 0;

  /// All stored patterns (arbitrary order).
  virtual std::vector<Pattern> Contents() const = 0;

  /// Rough accounting of live heap bytes, maintained incrementally; used
  /// for the space comparison of Fig. 5. The estimates use a uniform
  /// cost model across structures (bytes per node/list entry/pattern) so
  /// that relative comparisons are meaningful.
  virtual size_t ApproxMemoryBytes() const = 0;

  /// The paper's structure letter: "A", "B", "C" or "D".
  virtual const char* name() const = 0;
};

/// \brief The four index structures of §4.4.
enum class PatternIndexKind {
  kLinearList,          // A: baseline, linear scans
  kHashTable,           // B: hashing + generalization enumeration
  kPathIndex,           // C: per-(position, symbol) posting lists
  kDiscriminationTree,  // D: trie treating '*' as an ordinary symbol
};

const char* PatternIndexKindName(PatternIndexKind kind);
const char* PatternIndexKindLetter(PatternIndexKind kind);

/// Creates an empty index of the requested kind for patterns of `arity`.
std::unique_ptr<PatternIndex> MakePatternIndex(PatternIndexKind kind,
                                               size_t arity);

}  // namespace pcdb

#endif  // PCDB_PATTERN_PATTERN_INDEX_H_
