#ifndef PCDB_PATTERN_SIGNATURE_H_
#define PCDB_PATTERN_SIGNATURE_H_

#include <algorithm>
#include <cstdint>

#include "pattern/pattern.h"

/// \file
/// The *constant-position signature* of a pattern: the bit mask of its
/// non-wildcard positions, capped at 64 bits. Two subsystems share it:
///
///  - `ParallelMinimize` shards its input by signature, because patterns
///    with incomparable signatures can never subsume one another;
///  - the server's answer cache keys pattern-mutation epochs by
///    signature, so a punctuation touching one signature invalidates
///    only the cached answers whose query overlaps it (docs/SERVER.md).
///
/// The cap is sound for both uses: dropping positions beyond 64
/// preserves the subset relation between masks.

namespace pcdb {

/// Bit mask of the constant (non-wildcard) positions of `p`, capped at
/// 64 bits. If q subsumes p then q's constants are a subset of p's, so
/// `sig(q) ⊆ sig(p)` — even under the cap.
inline uint64_t PatternConstantSignature(const Pattern& p) {
  uint64_t mask = 0;
  const size_t n = std::min<size_t>(p.arity(), 64);
  for (size_t i = 0; i < n; ++i) {
    if (!p.IsWildcard(i)) mask |= uint64_t{1} << i;
  }
  return mask;
}

/// True when one signature's constant set contains the other's
/// (`a ⊆ b` or `b ⊆ a`). Subsumption between two patterns is possible
/// only when their signatures are comparable; the answer cache uses the
/// same test to decide whether a pattern mutation can sharpen a cached
/// query's completeness annotation (see docs/SERVER.md — incomparable
/// mutations may leave an entry's pattern set conservatively smaller,
/// which is sound: patterns are promises, and promising less never
/// over-claims completeness).
inline bool SignaturesComparable(uint64_t a, uint64_t b) {
  return (a & b) == a || (a & b) == b;
}

}  // namespace pcdb

#endif  // PCDB_PATTERN_SIGNATURE_H_
