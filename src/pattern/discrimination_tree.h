#ifndef PCDB_PATTERN_DISCRIMINATION_TREE_H_
#define PCDB_PATTERN_DISCRIMINATION_TREE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Structure D of §4.4: a discrimination tree — a trie over
/// pattern cells that treats the wildcard like any other symbol (Fig. 3).
///
/// Subsumption checking searches from the root, at level i always
/// following the '*' branch and, when the probe has constant d at i, also
/// the d branch — a branching factor of at most 2. Supersumption
/// retrieval follows the d branch when the probe has constant d, and all
/// branches when the probe has '*'. The paper finds this the fastest
/// structure, consistently ~25% faster than hashing.
///
/// Thread-compatible per the PatternIndex contract: no internal locking,
/// mutation requires exclusive access (shards own private instances).
class DiscriminationTree : public PatternIndex {
 public:
  explicit DiscriminationTree(size_t arity);
  ~DiscriminationTree() override;

  DiscriminationTree(const DiscriminationTree&) = delete;
  DiscriminationTree& operator=(const DiscriminationTree&) = delete;

  void Insert(const Pattern& p) override;
  bool Remove(const Pattern& p) override;
  bool HasSubsumer(const Pattern& p, bool strict) const override;
  void CollectSubsumed(const Pattern& p, bool strict,
                       std::vector<Pattern>* out) const override;
  void CollectSubsumers(const Pattern& p, bool strict,
                        std::vector<Pattern>* out) const override;
  size_t size() const override { return size_; }
  std::vector<Pattern> Contents() const override;
  size_t ApproxMemoryBytes() const override;
  const char* name() const override { return "D"; }

 private:
  struct Node;

  bool SearchSubsumer(const Node& node, const Pattern& p, size_t depth,
                      bool strict, bool equal_so_far) const;
  void SearchSubsumers(const Node& node, const Pattern& p, size_t depth,
                       bool strict, bool equal_so_far,
                       std::vector<Pattern::Cell>* prefix,
                       std::vector<Pattern>* out) const;
  void SearchSubsumed(const Node& node, const Pattern& p, size_t depth,
                      bool strict, bool equal_so_far,
                      std::vector<Pattern::Cell>* prefix,
                      std::vector<Pattern>* out) const;
  void Collect(const Node& node, std::vector<Pattern::Cell>* prefix,
               std::vector<Pattern>* out) const;

  size_t arity_;
  size_t size_ = 0;
  size_t node_count_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_DISCRIMINATION_TREE_H_
