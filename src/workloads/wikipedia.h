#ifndef PCDB_WORKLOADS_WIKIPEDIA_H_
#define PCDB_WORKLOADS_WIKIPEDIA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/annotated.h"

namespace pcdb {

/// \brief Configuration of the synthetic Wikipedia/DBpedia use case
/// (§4.2).
///
/// The paper scrapes ~55k cities (OpenGeoDB / geodatasource.com), 200
/// countries and 10k schools (DBpedia), plus 21 completeness statements
/// found on Wikipedia, and runs seven join queries (Table 7). We
/// generate tables of the same sizes whose join selectivities are tuned
/// so the seven queries produce result sizes of the paper's orders of
/// magnitude (278 … 3M rows) — the experiment's point is that query cost
/// varies over four orders of magnitude with result size while
/// completeness-calculation cost stays nearly constant.
struct WikipediaConfig {
  size_t num_cities = 55000;
  size_t num_countries = 200;
  size_t num_schools = 10000;
  /// Distinct states shared by cities and schools; drives the size of
  /// the city ⋈ school query (Q3, ~3M rows in the paper).
  size_t num_states = 200;
  /// Distinct city-name pool; collisions drive the city self-join (Q6).
  size_t city_name_pool = 20000;
  /// Distinct school-name pool; collisions drive the school self-join
  /// (Q7).
  size_t school_name_pool = 2400;
  uint64_t seed = 3;
};

/// \brief Builds the annotated database:
///   city(name, country, state, county)
///   country(name, capital)
///   school(name, country, state, city)
/// with 21 base completeness patterns in the style of Table 4 (country-
/// and country+state-level city statements, a complete country list,
/// school statements for selected countries).
AnnotatedDatabase MakeWikipediaDatabase(const WikipediaConfig& config = {});

/// \brief One of the seven experiment queries of §4.2 / Table 7.
struct WikipediaQuery {
  std::string id;   // "Q1" ... "Q7"
  std::string sql;  // exactly the paper's query text (modulo schema)
};

/// The seven join queries of Table 7, in paper order.
std::vector<WikipediaQuery> WikipediaQueries();

}  // namespace pcdb

#endif  // PCDB_WORKLOADS_WIKIPEDIA_H_
