#include "workloads/network_elements.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "relational/tuple.h"

namespace pcdb {
namespace {

constexpr size_t kNumRegions = 6;
constexpr size_t kNumTechnologies = 3;
constexpr size_t kNumVendors = 7;
constexpr size_t kNumCapabilities = 6;
constexpr size_t kNumSectors = 13;
constexpr size_t kNumStates = 53;

std::vector<Value> MakeDomain(const std::string& prefix, size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Value(prefix + std::to_string(i)));
  }
  return out;
}

/// A fully specified dimension combination.
struct Combo {
  size_t region;
  size_t technology;
  size_t vendor;
  size_t capability;
  size_t sector;
  size_t state;

  uint64_t Key() const {
    return ((((region * kNumTechnologies + technology) * kNumVendors +
              vendor) *
                 kNumCapabilities +
             capability) *
                kNumSectors +
            sector) *
               kNumStates +
           state;
  }
};

}  // namespace

NetworkElementsData GenerateNetworkElements(
    const NetworkElementsConfig& config) {
  Rng rng(config.seed);
  NetworkElementsData data;
  data.dimension_domains = {
      MakeDomain("region_", kNumRegions),
      MakeDomain("tech_", kNumTechnologies),
      MakeDomain("vendor_", kNumVendors),
      MakeDomain("cap_", kNumCapabilities),
      MakeDomain("sector_", kNumSectors),
      MakeDomain("state_", kNumStates),
  };

  // --- Correlation structure ------------------------------------------
  // Each state belongs to exactly one region (geographic nesting).
  std::vector<size_t> region_of_state(kNumStates);
  for (size_t s = 0; s < kNumStates; ++s) {
    region_of_state[s] = rng.UniformUint64(kNumRegions);
  }
  // Each technology is served by a subset of vendors and exposes a
  // subset of capability types (equipment correlation).
  std::vector<std::vector<size_t>> vendors_of_tech(kNumTechnologies);
  std::vector<std::vector<size_t>> caps_of_tech(kNumTechnologies);
  for (size_t t = 0; t < kNumTechnologies; ++t) {
    std::vector<size_t> vendors(kNumVendors);
    for (size_t v = 0; v < kNumVendors; ++v) vendors[v] = v;
    rng.Shuffle(&vendors);
    vendors.resize(3);
    vendors_of_tech[t] = vendors;
    std::vector<size_t> caps(kNumCapabilities);
    for (size_t c = 0; c < kNumCapabilities; ++c) caps[c] = c;
    rng.Shuffle(&caps);
    caps.resize(3);
    caps_of_tech[t] = caps;
  }

  // --- Combination generation -----------------------------------------
  // Hierarchical expansion per state until the target count is reached:
  // this yields far fewer combinations than the full product, all of
  // them respecting the correlations above.
  std::vector<Combo> combos;
  std::unordered_set<uint64_t> seen;
  size_t attempts = 0;
  while (combos.size() < config.target_combos &&
         attempts < config.target_combos * 200) {
    ++attempts;
    Combo combo;
    combo.state = rng.UniformUint64(kNumStates);
    combo.region = region_of_state[combo.state];
    combo.technology = rng.UniformUint64(kNumTechnologies);
    combo.vendor = rng.Pick(vendors_of_tech[combo.technology]);
    combo.capability = rng.Pick(caps_of_tech[combo.technology]);
    // Sectors are drawn from a small per-(state, tech) band, keeping the
    // sector dimension correlated too.
    size_t band = (combo.state * 7 + combo.technology * 3) % kNumSectors;
    combo.sector = (band + rng.UniformUint64(3)) % kNumSectors;
    if (seen.insert(combo.Key()).second) combos.push_back(combo);
  }
  PCDB_CHECK(!combos.empty());

  // --- Exponential rank-frequency skew --------------------------------
  const double tau =
      std::max(1.0, config.frequency_tau_fraction *
                        static_cast<double>(combos.size()));
  std::vector<double> cumulative(combos.size());
  double total = 0;
  for (size_t i = 0; i < combos.size(); ++i) {
    total += std::exp(-static_cast<double>(i) / tau);
    cumulative[i] = total;
  }

  // --- Name prefixes ---------------------------------------------------
  // Prefixes follow (technology, vendor): elements sharing a prefix
  // share equipment characteristics, which is what makes prefix drops
  // "systematic" in the Fig. 2 sense.
  static constexpr const char* kPrefixPool[] = {
      "Cnu", "Dxu", "Clu", "Enb", "Rnc", "Bts", "Mme", "Sgw",
      "Pgw", "Olt", "Onu", "Dsl", "Mwr", "Agg", "Cor", "Edg",
      "Acc", "Pop", "Hub", "Vtx", "Nid"};
  constexpr size_t kPrefixCount = sizeof(kPrefixPool) / sizeof(char*);
  auto prefix_of = [&](const Combo& combo) -> const char* {
    return kPrefixPool[(combo.technology * kNumVendors + combo.vendor) %
                       kPrefixCount];
  };
  std::unordered_set<std::string> used_prefixes;

  // --- Row emission -----------------------------------------------------
  Schema schema({{"name", ValueType::kString},
                 {"region_name", ValueType::kString},
                 {"technology", ValueType::kString},
                 {"vendor", ValueType::kString},
                 {"technology_capability_type", ValueType::kString},
                 {"sector", ValueType::kString},
                 {"state", ValueType::kString},
                 {"cpu_load", ValueType::kDouble},
                 {"memory_mb", ValueType::kInt64}});
  Table table(std::move(schema));
  table.Reserve(config.num_rows);
  std::vector<size_t> counter_per_prefix(kPrefixCount, 0);
  for (size_t r = 0; r < config.num_rows; ++r) {
    size_t idx;
    if (r < combos.size()) {
      // Every combination is realized at least once, matching the
      // paper's "combinations present" statistic exactly.
      idx = r;
    } else {
      double x = rng.UniformDouble() * total;
      idx = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), x) -
          cumulative.begin());
      if (idx >= combos.size()) idx = combos.size() - 1;
    }
    const Combo& combo = combos[idx];
    const char* prefix = prefix_of(combo);
    used_prefixes.insert(prefix);
    size_t prefix_index =
        static_cast<size_t>((combo.technology * kNumVendors + combo.vendor) %
                            kPrefixCount);
    std::string name =
        std::string(prefix) + std::to_string(counter_per_prefix[prefix_index]++);
    table.AppendUnchecked(Tuple{
        Value(std::move(name)),
        data.dimension_domains[0][combo.region],
        data.dimension_domains[1][combo.technology],
        data.dimension_domains[2][combo.vendor],
        data.dimension_domains[3][combo.capability],
        data.dimension_domains[4][combo.sector],
        data.dimension_domains[5][combo.state],
        Value(rng.UniformDouble() * 100.0),
        Value(static_cast<int64_t>(rng.UniformInt(512, 65536))),
    });
  }

  data.table = std::move(table);
  data.dimension_columns = {1, 2, 3, 4, 5, 6};
  data.name_prefixes.assign(used_prefixes.begin(), used_prefixes.end());
  std::sort(data.name_prefixes.begin(), data.name_prefixes.end());
  return data;
}

Tuple DimensionCombo(const NetworkElementsData& data, size_t row) {
  const Tuple& full = data.table.row(row);
  Tuple combo;
  combo.reserve(data.dimension_columns.size());
  for (size_t col : data.dimension_columns) combo.push_back(full[col]);
  return combo;
}

}  // namespace pcdb
