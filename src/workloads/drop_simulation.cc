#include "workloads/drop_simulation.h"

#include "common/logging.h"

namespace pcdb {

DropSimulator::DropSimulator(const Table& table,
                             std::vector<size_t> dimension_columns,
                             std::vector<std::vector<Value>> domains)
    : table_(table),
      dimension_columns_(std::move(dimension_columns)),
      domains_(std::move(domains)),
      index_(dimension_columns_.size()) {
  PCDB_CHECK(dimension_columns_.size() == domains_.size());
  // Everything is complete before any drop.
  index_.Insert(Pattern::AllWildcards(dimension_columns_.size()));
}

Tuple DropSimulator::ComboOf(size_t row_index) const {
  const Tuple& full = table_.row(row_index);
  Tuple combo;
  combo.reserve(dimension_columns_.size());
  for (size_t col : dimension_columns_) combo.push_back(full[col]);
  return combo;
}

size_t DropSimulator::DropRow(size_t row_index) {
  PCDB_CHECK(row_index < table_.num_rows());
  if (!dropped_rows_.insert(row_index).second) return index_.size();
  Tuple combo = ComboOf(row_index);
  if (!dropped_combos_.insert(combo).second) {
    // Another record with the same dimension values was dropped before;
    // the surviving patterns already exclude this combination.
    return index_.size();
  }

  // Patterns subsuming the dropped combination cease to hold.
  Pattern combo_pattern = Pattern::FromTuple(combo);
  std::vector<Pattern> violated;
  index_.CollectSubsumers(combo_pattern, /*strict=*/false, &violated);
  for (const Pattern& p : violated) index_.Remove(p);

  // Replace each violated pattern with its most general specializations
  // that avoid the dropped combination: one wildcard position pinned to
  // a domain value different from the combination's. Such a
  // specialization cannot subsume any earlier dropped combination either
  // (it is below its parent, which held).
  for (const Pattern& p : violated) {
    for (size_t i = 0; i < p.arity(); ++i) {
      if (!p.IsWildcard(i)) continue;
      for (const Value& d : domains_[i]) {
        if (d == combo[i]) continue;
        Pattern candidate = p.WithValue(i, d);
        if (index_.HasSubsumer(candidate, /*strict=*/false)) continue;
        // Keep the set minimal: the new pattern may cover previously
        // added specializations.
        std::vector<Pattern> covered;
        index_.CollectSubsumed(candidate, /*strict=*/true, &covered);
        for (const Pattern& q : covered) index_.Remove(q);
        index_.Insert(candidate);
      }
    }
  }
  dirty_ = true;
  return index_.size();
}

const PatternSet& DropSimulator::patterns() const {
  if (dirty_) {
    cache_ = PatternSet(index_.Contents());
    dirty_ = false;
  }
  return cache_;
}

}  // namespace pcdb
