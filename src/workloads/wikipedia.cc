#include "workloads/wikipedia.h"

#include "common/logging.h"
#include "common/random.h"

namespace pcdb {
namespace {

/// Countries carrying completeness statements get recognizable names;
/// the rest are synthetic.
const char* kNamedCountries[] = {"USA",      "Germany", "Ukraine",
                                 "Bulgaria", "UK",      "Czech",
                                 "France",   "Italy"};

std::string CountryName(size_t i) {
  constexpr size_t kNamed = sizeof(kNamedCountries) / sizeof(char*);
  if (i < kNamed) return kNamedCountries[i];
  return "Country_" + std::to_string(i);
}

}  // namespace

AnnotatedDatabase MakeWikipediaDatabase(const WikipediaConfig& config) {
  Rng rng(config.seed);
  AnnotatedDatabase adb;
  auto must = [](const Status& s) { PCDB_CHECK(s.ok()) << s.ToString(); };

  // --- country(name, capital) ------------------------------------------
  must(adb.CreateTable("country", Schema({{"name", ValueType::kString},
                                          {"capital", ValueType::kString}})));
  std::vector<std::string> countries;
  countries.reserve(config.num_countries);
  for (size_t i = 0; i < config.num_countries; ++i) {
    countries.push_back(CountryName(i));
    must(adb.AddRow("country",
                    {countries.back(), "Capital_" + std::to_string(i)}));
  }

  // --- city(name, country, state, county) -------------------------------
  must(adb.CreateTable("city", Schema({{"name", ValueType::kString},
                                       {"country", ValueType::kString},
                                       {"state", ValueType::kString},
                                       {"county", ValueType::kString}})));
  auto state_of = [&](size_t k) {
    return "State_" + std::to_string(k % config.num_states);
  };
  // Capital cities first: every country gets one city named after its
  // capital; roughly 40% get a twin city with the same name elsewhere,
  // putting the country ⋈ city result near the paper's 278 rows.
  size_t cities_emitted = 0;
  for (size_t i = 0; i < config.num_countries && cities_emitted <
                                                      config.num_cities;
       ++i) {
    size_t copies = rng.Bernoulli(0.4) ? 2 : 1;
    for (size_t c = 0; c < copies; ++c) {
      must(adb.AddRow(
          "city", {"Capital_" + std::to_string(i),
                   countries[c == 0 ? i : rng.UniformUint64(countries.size())],
                   state_of(rng.Next()),
                   "County_" + std::to_string(rng.UniformInt(0, 499))}));
      ++cities_emitted;
    }
  }
  while (cities_emitted < config.num_cities) {
    must(adb.AddRow(
        "city",
        {"City_" + std::to_string(rng.UniformUint64(config.city_name_pool)),
         countries[rng.UniformUint64(countries.size())],
         state_of(rng.Next()),
         "County_" + std::to_string(rng.UniformInt(0, 499))}));
    ++cities_emitted;
  }

  // --- school(name, country, state, city) -------------------------------
  must(adb.CreateTable("school", Schema({{"name", ValueType::kString},
                                         {"country", ValueType::kString},
                                         {"state", ValueType::kString},
                                         {"city", ValueType::kString}})));
  for (size_t i = 0; i < config.num_schools; ++i) {
    // ~55% of schools carry a country value matching the country table
    // (the rest have unrecognized spellings), reproducing Q2's ~5.5k
    // result; ~3% are located in capital-named cities (Q4's ~300).
    std::string country = rng.Bernoulli(0.55)
                              ? countries[rng.UniformUint64(countries.size())]
                              : "Unrecognized_" +
                                    std::to_string(rng.UniformInt(0, 999));
    std::string city =
        rng.Bernoulli(0.03)
            ? "Capital_" + std::to_string(
                               rng.UniformUint64(config.num_countries))
            : "City_" +
                  std::to_string(rng.UniformUint64(config.city_name_pool));
    must(adb.AddRow(
        "school",
        {"School_" +
             std::to_string(rng.UniformUint64(config.school_name_pool)),
         std::move(country), state_of(rng.Next()), std::move(city)}));
  }

  // --- The 21 completeness statements -----------------------------------
  // Twelve city statements at country granularity (the Table 4 style:
  // "complete list of cities in <country>").
  const char* kCompleteCityCountries[] = {
      "Germany", "Ukraine", "Bulgaria", "Czech", "Italy", "UK"};
  for (const char* c : kCompleteCityCountries) {
    must(adb.AddPattern("city", {"*", c, "*", "*"}));
  }
  for (size_t i = 10; i < 16; ++i) {
    must(adb.AddPattern("city", {"*", CountryName(i), "*", "*"}));
  }
  // The country list itself is complete (one statement).
  must(adb.AddPattern("country", {"*", "*"}));
  // Eight school statements at country granularity.
  const char* kCompleteSchoolCountries[] = {"USA", "Germany", "France",
                                            "Italy"};
  for (const char* c : kCompleteSchoolCountries) {
    must(adb.AddPattern("school", {"*", c, "*", "*"}));
  }
  for (size_t i = 16; i < 20; ++i) {
    must(adb.AddPattern("school", {"*", CountryName(i), "*", "*"}));
  }
  return adb;
}

std::vector<WikipediaQuery> WikipediaQueries() {
  return {
      {"Q1",
       "SELECT * FROM country, city WHERE country.capital=city.name"},
      {"Q2",
       "SELECT * FROM country, school WHERE country.name=school.country"},
      {"Q3", "SELECT * FROM city, school WHERE city.state=school.state"},
      {"Q4",
       "SELECT * FROM country, school WHERE country.capital=school.city"},
      {"Q5",
       "SELECT * FROM country, city, school WHERE "
       "country.capital=city.name AND city.state=school.state"},
      {"Q6", "SELECT * FROM city c1, city c2 WHERE c1.name=c2.name"},
      {"Q7", "SELECT * FROM school s1, school s2 WHERE s1.name=s2.name"},
  };
}

}  // namespace pcdb
