#include "workloads/tpch.h"

#include "common/random.h"

namespace pcdb {
namespace {

std::vector<Value> StringDomain(std::initializer_list<const char*> values) {
  std::vector<Value> out;
  out.reserve(values.size());
  for (const char* v : values) out.push_back(Value(v));
  return out;
}

std::vector<Value> IntDomain(int64_t lo, int64_t hi, int64_t step = 1) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>((hi - lo) / step) + 1);
  for (int64_t v = lo; v <= hi; v += step) out.emplace_back(v);
  return out;
}

}  // namespace

TpchData GenerateLineitem(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchData data;
  data.dimension_domains = {
      StringDomain({"A", "N", "R"}),                       // returnflag
      StringDomain({"O", "F"}),                            // linestatus
      IntDomain(1, 50),                                    // quantity
      IntDomain(0, 10),                                    // discount (%)
      IntDomain(0, 8),                                     // tax (%)
      StringDomain({"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                    "FOB"}),                               // shipmode
      StringDomain({"DELIVER IN PERSON", "COLLECT COD", "NONE",
                    "TAKE BACK RETURN"}),                  // shipinstruct
  };

  Schema schema({{"orderkey", ValueType::kInt64},
                 {"returnflag", ValueType::kString},
                 {"linestatus", ValueType::kString},
                 {"quantity", ValueType::kInt64},
                 {"discount", ValueType::kInt64},
                 {"tax", ValueType::kInt64},
                 {"shipmode", ValueType::kString},
                 {"shipinstruct", ValueType::kString},
                 {"extendedprice", ValueType::kDouble}});
  Table table(std::move(schema));
  table.Reserve(config.num_rows);
  for (size_t r = 0; r < config.num_rows; ++r) {
    Tuple row;
    row.reserve(9);
    row.push_back(Value(static_cast<int64_t>(r / 4 + 1)));
    for (const std::vector<Value>& domain : data.dimension_domains) {
      row.push_back(rng.Pick(domain));
    }
    row.push_back(Value(901.0 + rng.UniformDouble() * 103999.0));
    table.AppendUnchecked(std::move(row));
  }
  data.table = std::move(table);
  data.dimension_columns = {1, 2, 3, 4, 5, 6, 7};
  return data;
}

}  // namespace pcdb
