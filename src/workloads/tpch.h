#ifndef PCDB_WORKLOADS_TPCH_H_
#define PCDB_WORKLOADS_TPCH_H_

#include <cstdint>
#include <vector>

#include "relational/table.h"

namespace pcdb {

/// \brief Configuration of the mini-dbgen for the TPC-H lineitem table.
///
/// The paper uses lineitem at scale factor 1 (6M rows) as the
/// *uncorrelated, unskewed* counterpart of the network-element table: it
/// selects seven low-cardinality attributes and observes that, unlike
/// the real-world table, pattern counts under record drops do not
/// converge (Fig. 1) because lineitem's dimension values are independent
/// and uniform. We generate exactly that character: the seven canonical
/// low-cardinality lineitem attributes — returnflag (3), linestatus (2),
/// quantity (50), discount (11), tax (9), shipmode (7),
/// shipinstruct (4) — drawn independently and uniformly. (The paper
/// reports 460,800 possible combinations for its unnamed attribute pick;
/// the canonical seven give 831,600 — same order of magnitude, same
/// uniform/uncorrelated behaviour, which is all the experiments use.)
struct TpchConfig {
  /// Rows to generate (paper: 6M at SF 1; benches default lower).
  size_t num_rows = 600000;
  uint64_t seed = 7;
};

/// \brief The generated lineitem slice plus experiment metadata.
struct TpchData {
  /// Schema: orderkey, returnflag, linestatus, quantity, discount, tax,
  /// shipmode, shipinstruct, extendedprice.
  Table table;
  /// Column indices of the seven dimension attributes.
  std::vector<size_t> dimension_columns;
  /// Full domains of the dimension attributes.
  std::vector<std::vector<Value>> dimension_domains;
};

TpchData GenerateLineitem(const TpchConfig& config = {});

}  // namespace pcdb

#endif  // PCDB_WORKLOADS_TPCH_H_
