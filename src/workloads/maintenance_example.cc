#include "workloads/maintenance_example.h"

#include "common/logging.h"

namespace pcdb {

AnnotatedDatabase MakeMaintenanceDatabase() {
  AnnotatedDatabase adb;
  auto must = [](const Status& s) { PCDB_CHECK(s.ok()) << s.ToString(); };

  must(adb.CreateTable(
      "Warnings", Schema({{"day", ValueType::kString},
                          {"week", ValueType::kInt64},
                          {"ID", ValueType::kString},
                          {"message", ValueType::kString}})));
  must(adb.AddRow("Warnings", {"Mon", 1, "tw37", "high voltage"}));
  must(adb.AddRow("Warnings", {"Fri", 1, "tw37", "high voltage"}));
  must(adb.AddRow("Warnings", {"Wed", 2, "tw37", "overheated"}));
  must(adb.AddRow("Warnings", {"Tue", 1, "tw59", "auto restart"}));
  must(adb.AddRow("Warnings", {"Fri", 1, "tw59", "overheat"}));
  must(adb.AddRow("Warnings", {"Mon", 2, "tw83", "high voltage"}));
  must(adb.AddRow("Warnings", {"Tue", 2, "tw83", "auto restart"}));
  // p1–p3: week 1 fully loaded; Monday and Wednesday of week 2 loaded.
  must(adb.AddPattern("Warnings", {"*", "1", "*", "*"}));
  must(adb.AddPattern("Warnings", {"Mon", "2", "*", "*"}));
  must(adb.AddPattern("Warnings", {"Wed", "2", "*", "*"}));

  must(adb.CreateTable(
      "Maintenance", Schema({{"ID", ValueType::kString},
                             {"responsible", ValueType::kString},
                             {"reason", ValueType::kString}})));
  must(adb.AddRow("Maintenance", {"tw37", "A", "disk failure"}));
  must(adb.AddRow("Maintenance", {"tw59", "D", "software crash"}));
  must(adb.AddRow("Maintenance", {"tw83", "B", "unknown"}));
  must(adb.AddRow("Maintenance", {"tw140", "C", "update failure"}));
  must(adb.AddRow("Maintenance", {"tw140", "C", "network error"}));
  // p4–p6: teams A, B and C export their maintenance data automatically.
  must(adb.AddPattern("Maintenance", {"*", "A", "*"}));
  must(adb.AddPattern("Maintenance", {"*", "B", "*"}));
  must(adb.AddPattern("Maintenance", {"*", "C", "*"}));

  must(adb.CreateTable("Teams",
                       Schema({{"name", ValueType::kString},
                               {"specialization", ValueType::kString}})));
  must(adb.AddRow("Teams", {"A", "hardware"}));
  must(adb.AddRow("Teams", {"B", "hardware"}));
  must(adb.AddRow("Teams", {"C", "network"}));
  must(adb.AddRow("Teams", {"C", "software"}));
  must(adb.AddRow("Teams", {"D", "network"}));
  // p7: all teams with their specializations are known.
  must(adb.AddPattern("Teams", {"*", "*"}));

  return adb;
}

ExprPtr MakeHardwareWarningsQuery() {
  // σ_week=2(W) ⋈_{W.ID=M.ID} (M ⋈_{M.responsible=T.name} σ_spec=hw(T))
  ExprPtr w = Expr::SelectConst(Expr::Scan("Warnings", "W"), "week", 2);
  ExprPtr t = Expr::SelectConst(Expr::Scan("Teams", "T"), "specialization",
                                "hardware");
  ExprPtr mt =
      Expr::Join(Expr::Scan("Maintenance", "M"), t, "M.responsible", "T.name");
  return Expr::Join(w, mt, "W.ID", "M.ID");
}

ExprPtr MakeHardwareWarningsQueryAlternate() {
  // (σ_week=2(W) ⋈_{W.ID=M.ID} M) ⋈_{M.responsible=T.name} σ_spec=hw(T)
  ExprPtr w = Expr::SelectConst(Expr::Scan("Warnings", "W"), "week", 2);
  ExprPtr wm =
      Expr::Join(w, Expr::Scan("Maintenance", "M"), "W.ID", "M.ID");
  ExprPtr t = Expr::SelectConst(Expr::Scan("Teams", "T"), "specialization",
                                "hardware");
  return Expr::Join(wm, t, "M.responsible", "T.name");
}

}  // namespace pcdb
