#ifndef PCDB_WORKLOADS_MAINTENANCE_EXAMPLE_H_
#define PCDB_WORKLOADS_MAINTENANCE_EXAMPLE_H_

#include "pattern/annotated.h"
#include "relational/expr.h"

namespace pcdb {

/// \brief The paper's running example: the network-maintenance database
/// D_maint of Table 1, with tables Warnings(day, week, ID, message),
/// Maintenance(ID, responsible, reason) and Teams(name, specialization),
/// annotated with the completeness patterns p1–p7.
///
/// Week numbers are INT64; all other attributes are strings.
AnnotatedDatabase MakeMaintenanceDatabase();

/// The query Q_hw of §1 in its algebraic form (1):
/// σ_{week=2}(W) ⋈_{W.ID=M.ID} (M ⋈_{M.responsible=T.name}
/// σ_{specialization=hardware}(T)). Tables are scanned under the aliases
/// W, M, T.
ExprPtr MakeHardwareWarningsQuery();

/// An equivalent plan with a different join order (selections pushed
/// differently) used to test expression-independence of the computed
/// patterns.
ExprPtr MakeHardwareWarningsQueryAlternate();

}  // namespace pcdb

#endif  // PCDB_WORKLOADS_MAINTENANCE_EXAMPLE_H_
