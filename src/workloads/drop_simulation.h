#ifndef PCDB_WORKLOADS_DROP_SIMULATION_H_
#define PCDB_WORKLOADS_DROP_SIMULATION_H_

#include <unordered_set>
#include <vector>

#include "pattern/discrimination_tree.h"
#include "pattern/pattern.h"
#include "relational/table.h"

namespace pcdb {

/// \brief The §4.3 test-case generator: maintains the minimal set of
/// completeness patterns that hold over a dataset as records are
/// dropped.
///
/// Initially the dataset is assumed fully complete — the single pattern
/// (∗, …, ∗) over the chosen dimension attributes. Dropping a record
/// invalidates every pattern that subsumes the record's dimension
/// combination (the record now exists in the real world but not in the
/// database); each invalidated pattern is replaced by its most general
/// specializations that avoid all dropped combinations: one constant
/// (different from the dropped value, drawn from the attribute's domain)
/// substituted into one wildcard position. The pattern set is kept
/// minimal throughout.
///
/// Dropping a second record with an already-dropped combination changes
/// nothing — the explanation the paper gives for the convergence of
/// pattern counts on correlated real data (Fig. 1).
class DropSimulator {
 public:
  /// `table` is the dataset; `dimension_columns` selects the attributes
  /// patterns range over; `domains` are those attributes' value domains
  /// (aligned with `dimension_columns`), used as the specialization
  /// candidates.
  DropSimulator(const Table& table, std::vector<size_t> dimension_columns,
                std::vector<std::vector<Value>> domains);

  /// Patterns currently asserted (always minimal). Materialized lazily
  /// from the internal discrimination tree.
  const PatternSet& patterns() const;
  size_t num_patterns() const { return index_.size(); }

  /// Number of DropRow calls that removed a not-yet-dropped row.
  size_t num_dropped_rows() const { return dropped_rows_.size(); }

  /// Distinct dimension combinations dropped so far.
  size_t num_dropped_combos() const { return dropped_combos_.size(); }

  /// Drops the row at `row_index` (into the original table). Returns the
  /// pattern count after the drop. Dropping the same row twice is a
  /// no-op.
  size_t DropRow(size_t row_index);

  /// True if `row_index` was already dropped.
  bool IsDropped(size_t row_index) const {
    return dropped_rows_.count(row_index) > 0;
  }

 private:
  /// The dimension projection of a row, as a tuple.
  Tuple ComboOf(size_t row_index) const;

  const Table& table_;
  std::vector<size_t> dimension_columns_;
  std::vector<std::vector<Value>> domains_;
  DiscriminationTree index_;
  mutable PatternSet cache_;
  mutable bool dirty_ = true;
  std::unordered_set<size_t> dropped_rows_;
  std::unordered_set<Tuple, TupleHash> dropped_combos_;
};

}  // namespace pcdb

#endif  // PCDB_WORKLOADS_DROP_SIMULATION_H_
