#ifndef PCDB_WORKLOADS_NETWORK_ELEMENTS_H_
#define PCDB_WORKLOADS_NETWORK_ELEMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/table.h"

namespace pcdb {

/// \brief Configuration of the synthetic network-element table.
///
/// The paper's experiments use a proprietary table from a network
/// provider: 64 attributes, 760k records, six manually identified
/// dimension attributes — region_name (6 distinct values), technology
/// (3), vendor (7), technology_capability_type (6), sector (13), state
/// (53) — of whose 1,185,408 possible value combinations only 1,558
/// (0.205% of the record count) are present, with exponentially
/// distributed combination frequencies, strong cross-attribute
/// correlation, and element names whose prefixes carry semantics.
///
/// This generator reproduces those published statistics: states nest in
/// regions, vendors and capability types depend on the technology,
/// combination frequencies decay exponentially with rank, and every
/// combination is assigned a name prefix shared with attribute-wise
/// similar combinations (so prefix-based drops are correlated drops,
/// as in Fig. 2).
struct NetworkElementsConfig {
  /// Records to generate (the paper's table has 760k; benches default
  /// lower to keep runtime sane — the experiments' shapes depend on the
  /// combination structure, not the row count).
  size_t num_rows = 100000;
  /// Distinct dimension-value combinations to aim for (paper: 1,558).
  size_t target_combos = 1558;
  /// Scale of the exponential rank-frequency decay, as a fraction of the
  /// combination count. The default makes a few dozen combinations carry
  /// almost all rows (every combination still gets at least one row), so
  /// random drops mostly revisit already-dropped combinations — the
  /// property behind the Fig. 1 convergence.
  double frequency_tau_fraction = 0.03;
  uint64_t seed = 1;
};

/// \brief The generated table plus the metadata the experiments need.
struct NetworkElementsData {
  /// Schema: name, region_name, technology, vendor,
  /// technology_capability_type, sector, state, cpu_load, memory_mb.
  /// (The real table's remaining ~55 measurement attributes are
  /// irrelevant to every experiment; two stand in for them.)
  Table table;
  /// Column indices of the six dimension attributes, in the order
  /// region_name, technology, vendor, technology_capability_type,
  /// sector, state.
  std::vector<size_t> dimension_columns;
  /// Full attribute domains (cardinalities 6, 3, 7, 6, 13, 53), aligned
  /// with dimension_columns. These are the *possible* values; the data
  /// realizes only a skewed fraction of their product.
  std::vector<std::vector<Value>> dimension_domains;
  /// The distinct name prefixes in use (for systematic-loss drops).
  std::vector<std::string> name_prefixes;
};

NetworkElementsData GenerateNetworkElements(
    const NetworkElementsConfig& config = {});

/// Projects the dimension attributes of `data.table` row `row` into a
/// tuple (used by the drop simulator and the promotion benches).
Tuple DimensionCombo(const NetworkElementsData& data, size_t row);

}  // namespace pcdb

#endif  // PCDB_WORKLOADS_NETWORK_ELEMENTS_H_
