#include "durability/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "durability/crc32c.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace pcdb {

namespace {

/// Hard sanity bound on one record body: the wire protocol caps a frame
/// payload at 64 MiB; allow headroom for the record header fields. A
/// larger length prefix can only come from corruption.
constexpr uint32_t kMaxWalBodyBytes = (64u << 20) + 4096;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr size_t kSegmentDigits = 20;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status ErrnoStatus(const std::string& op, int err) {
  return Status::Internal(op + " failed: " + std::strerror(err));
}

/// "wal-00000000000000000042.log" for first LSN 42: zero-padded so the
/// lexicographic directory order is the replay order.
std::string SegmentName(uint64_t first_lsn) {
  std::string digits = std::to_string(first_lsn);
  std::string name = kSegmentPrefix;
  name.append(kSegmentDigits - std::min(kSegmentDigits, digits.size()), '0');
  name += digits;
  name += kSegmentSuffix;
  return name;
}

/// The first LSN encoded in a segment file name; 0 if the name is not
/// segment-shaped.
uint64_t SegmentFirstLsn(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (base.size() <= prefix_len + suffix_len) return 0;
  if (base.compare(0, prefix_len, kSegmentPrefix) != 0) return 0;
  if (base.compare(base.size() - suffix_len, suffix_len, kSegmentSuffix) !=
      0) {
    return 0;
  }
  uint64_t lsn = 0;
  for (size_t i = prefix_len; i < base.size() - suffix_len; ++i) {
    if (base[i] < '0' || base[i] > '9') return 0;
    lsn = lsn * 10 + static_cast<uint64_t>(base[i] - '0');
  }
  return lsn;
}

/// Whole-file read; kNotFound for a missing file.
Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open " + path, errno);
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read " + path, err);
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

}  // namespace

void AppendWalRecord(std::string* out, const WalRecord& record) {
  std::string body;
  AppendU64(&body, record.lsn);
  body.push_back(static_cast<char>(record.type));
  AppendU32(&body, static_cast<uint32_t>(record.tenant.size()));
  body += record.tenant;
  AppendU64(&body, record.writer_id);
  AppendU64(&body, record.seq);
  AppendU32(&body, static_cast<uint32_t>(record.payload.size()));
  body += record.payload;
  AppendU32(out, static_cast<uint32_t>(body.size()));
  *out += body;
  AppendU32(out, Crc32c(body.data(), body.size()));
}

WalDecodeResult DecodeWalRecord(const uint8_t* data, size_t len) {
  WalDecodeResult result;
  if (len < 4) {
    result.outcome = WalDecodeOutcome::kTorn;
    result.detail = "truncated length prefix";
    return result;
  }
  const uint32_t body_len = ReadU32(data);
  if (body_len > kMaxWalBodyBytes) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail =
        "implausible record length " + std::to_string(body_len);
    return result;
  }
  // Minimum body: lsn(8) + type(1) + tenant len(4) + writer(8) + seq(8)
  // + payload len(4).
  if (body_len < 33) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail = "record body shorter than the fixed header";
    return result;
  }
  if (len < 4u + body_len + 4u) {
    result.outcome = WalDecodeOutcome::kTorn;
    result.detail = "truncated record body or checksum";
    return result;
  }
  const uint8_t* body = data + 4;
  const uint32_t stored_crc = ReadU32(body + body_len);
  const uint32_t actual_crc = Crc32c(body, body_len);
  if (stored_crc != actual_crc) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail = "checksum mismatch";
    return result;
  }
  // The CRC passed, so any structural inconsistency below means the
  // checksummed bytes themselves are not a record: corrupt, not torn.
  size_t pos = 0;
  result.record.lsn = ReadU64(body + pos);
  pos += 8;
  const uint8_t type_tag = body[pos++];
  if (type_tag > static_cast<uint8_t>(WalRecordType::kPunctuate)) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail = "unknown record type tag " + std::to_string(type_tag);
    return result;
  }
  result.record.type = static_cast<WalRecordType>(type_tag);
  const uint32_t tenant_len = ReadU32(body + pos);
  pos += 4;
  if (tenant_len > body_len - pos || body_len - pos - tenant_len < 20) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail = "tenant length overruns the record body";
    return result;
  }
  result.record.tenant.assign(reinterpret_cast<const char*>(body + pos),
                              tenant_len);
  pos += tenant_len;
  result.record.writer_id = ReadU64(body + pos);
  pos += 8;
  result.record.seq = ReadU64(body + pos);
  pos += 8;
  const uint32_t payload_len = ReadU32(body + pos);
  pos += 4;
  if (payload_len != body_len - pos) {
    result.outcome = WalDecodeOutcome::kCorrupt;
    result.detail = "payload length disagrees with the record length";
    return result;
  }
  result.record.payload.assign(reinterpret_cast<const char*>(body + pos),
                               payload_len);
  result.outcome = WalDecodeOutcome::kRecord;
  result.consumed = 4u + body_len + 4u;
  return result;
}

Result<std::vector<std::string>> ListWalSegments(const std::string& dir) {
  std::vector<std::string> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return segments;  // no log yet
    return ErrnoStatus("opendir " + dir, errno);
  }
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(d);
    if (entry == nullptr) break;
    const std::string name = entry->d_name;
    if (SegmentFirstLsn(name) > 0 || name == SegmentName(0)) {
      segments.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end());
  return segments;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, const WalWriterOptions& options) {
  PCDB_FAILPOINT("wal.open");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + dir, errno);
  }
  std::unique_ptr<WalWriter> writer(new WalWriter());
  writer->dir_ = dir;
  if (options.metrics != nullptr) {
    writer->c_records_ = options.metrics->GetCounter(kMetricWalRecordsTotal);
    writer->c_fsyncs_ = options.metrics->GetCounter(kMetricWalFsyncsTotal);
  }
  writer->next_lsn_ = std::max<uint64_t>(1, options.min_next_lsn);

  PCDB_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                        ListWalSegments(dir));
  // Walk the segments to find the end of the valid prefix: the next
  // LSN, the segment and offset to append at, and any torn tail to
  // truncate away (a crash mid-append leaves one).
  size_t valid_segments = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    writer->next_lsn_ =
        std::max(writer->next_lsn_, SegmentFirstLsn(segments[i]));
    PCDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(segments[i]));
    size_t offset = 0;
    bool tail_invalid = false;
    while (offset < bytes.size()) {
      const WalDecodeResult decoded = DecodeWalRecord(
          reinterpret_cast<const uint8_t*>(bytes.data()) + offset,
          bytes.size() - offset);
      if (decoded.outcome != WalDecodeOutcome::kRecord) {
        tail_invalid = true;
        break;
      }
      offset += decoded.consumed;
      writer->next_lsn_ = std::max(writer->next_lsn_, decoded.record.lsn + 1);
    }
    if (tail_invalid) {
      // Drop the invalid suffix so new records append after the last
      // valid one; record boundaries past it cannot be trusted, so any
      // later segments are unrecoverable too.
      if (::truncate(segments[i].c_str(), static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("truncate " + segments[i], errno);
      }
      for (size_t j = i + 1; j < segments.size(); ++j) {
        if (::unlink(segments[j].c_str()) != 0 && errno != ENOENT) {
          return ErrnoStatus("unlink " + segments[j], errno);
        }
      }
      valid_segments = i + 1;
      break;
    }
  }

  if (valid_segments == 0) {
    PCDB_RETURN_NOT_OK(writer->OpenSegment(writer->next_lsn_));
  } else {
    const std::string& last = segments[valid_segments - 1];
    writer->segment_first_lsn_ = SegmentFirstLsn(last);
    writer->fd_ = ::open(last.c_str(), O_WRONLY | O_APPEND);
    if (writer->fd_ < 0) return ErrnoStatus("open " + last, errno);
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::OpenSegment(uint64_t first_lsn) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentName(first_lsn);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return ErrnoStatus("open " + path, errno);
  segment_first_lsn_ = first_lsn;
  return Status::OK();
}

Status WalWriter::AppendBatch(std::vector<WalRecord>* records) {
  if (records->empty()) return Status::OK();
  PCDB_TRACE_SPAN(span, kSpanWalAppendBatch);
  span.Arg("records", records->size());
  PCDB_FAILPOINT("wal.append");
  if (fd_ < 0) return Status::Internal("wal: no open segment");
  const uint64_t first_lsn = next_lsn_;
  std::string buf;
  for (WalRecord& record : *records) {
    record.lsn = next_lsn_++;
    AppendWalRecord(&buf, record);
  }
  // Behavioural corruption fault: flip a byte before it reaches the
  // disk, modelling bit rot / a misdirected write. Recovery must stop
  // cleanly at the damaged record. AnyActive() keeps the unarmed hot
  // path to one relaxed atomic load (same idiom as server.read.short).
  if (Failpoints::Global().AnyActive() &&
      Failpoints::Global().IsActive("wal.corrupt")) {
    PCDB_RETURN_NOT_OK(Failpoints::Global().Hit("wal.corrupt"));
    if (!buf.empty()) buf[buf.size() / 2] ^= 0x5A;
  }
  // Behavioural short-write fault: persist only a prefix, modelling
  // power loss mid-append (the torn tail recovery truncates).
  size_t write_len = buf.size();
  if (Failpoints::Global().AnyActive() &&
      Failpoints::Global().IsActive("wal.append.short")) {
    PCDB_RETURN_NOT_OK(Failpoints::Global().Hit("wal.append.short"));
    write_len /= 2;
  }
  const off_t batch_start = ::lseek(fd_, 0, SEEK_END);
  size_t written = 0;
  Status io;
  while (written < write_len) {
    const ssize_t n =
        ::write(fd_, buf.data() + written, write_len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      io = ErrnoStatus("wal write", errno);
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (io.ok()) {
    Status fsync_fault = Failpoints::Global().Hit("wal.fsync");
    if (!fsync_fault.ok()) {
      io = std::move(fsync_fault);
    } else if (::fsync(fd_) != 0) {
      io = ErrnoStatus("wal fsync", errno);
    }
  }
  if (!io.ok()) {
    // The batch is not durable: un-write it so a later batch does not
    // append after garbage. If even the truncate fails the torn bytes
    // stay and recovery's torn-tail handling deals with them.
    if (batch_start >= 0 && ::ftruncate(fd_, batch_start) == 0) {
      next_lsn_ = first_lsn;
    }
    return io;
  }
  if (c_records_ != nullptr) c_records_->Increment(records->size());
  if (c_fsyncs_ != nullptr) c_fsyncs_->Increment();
  return Status::OK();
}

Result<uint64_t> WalWriter::TruncateThrough(uint64_t durable_lsn) {
  // Rotate first: the fresh segment's name pins next_lsn so the log
  // never becomes nameless, then delete every segment whose records
  // are all covered by the checkpoint.
  PCDB_RETURN_NOT_OK(OpenSegment(next_lsn_));
  PCDB_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                        ListWalSegments(dir_));
  uint64_t removed = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i spans [first_i, first_{i+1}): droppable when its last
    // possible LSN is within the checkpoint.
    const uint64_t next_first = SegmentFirstLsn(segments[i + 1]);
    if (next_first == 0 || next_first > durable_lsn + 1) continue;
    if (::unlink(segments[i].c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink " + segments[i], errno);
    }
    ++removed;
  }
  return removed;
}

Result<WalReplayStats> ReplayWal(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& apply,
    MetricsRegistry* metrics) {
  PCDB_TRACE_SPAN(span, kSpanRecoveryReplay);
  WalReplayStats stats;
  Counter* c_recovered =
      metrics != nullptr ? metrics->GetCounter(kMetricWalRecoveredRecords)
                         : nullptr;
  Counter* c_torn = metrics != nullptr
                        ? metrics->GetCounter(kMetricWalTornTailTotal)
                        : nullptr;
  PCDB_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                        ListWalSegments(dir));
  for (const std::string& segment : segments) {
    PCDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(segment));
    size_t offset = 0;
    while (offset < bytes.size()) {
      PCDB_FAILPOINT("recovery.record");
      const WalDecodeResult decoded = DecodeWalRecord(
          reinterpret_cast<const uint8_t*>(bytes.data()) + offset,
          bytes.size() - offset);
      if (decoded.outcome != WalDecodeOutcome::kRecord) {
        stats.torn_tail = true;
        stats.tail_detail = segment + ": " + decoded.detail;
        break;
      }
      offset += decoded.consumed;
      if (decoded.record.lsn <= after_lsn) {
        ++stats.records_skipped;
        continue;
      }
      PCDB_RETURN_NOT_OK(apply(decoded.record));
      ++stats.records_replayed;
      if (c_recovered != nullptr) c_recovered->Increment();
    }
    // Boundaries past a torn/corrupt record cannot be trusted, and
    // neither can any later segment (the writer appends in order).
    if (stats.torn_tail) break;
  }
  if (stats.torn_tail && c_torn != nullptr) c_torn->Increment();
  span.Arg("replayed", stats.records_replayed);
  span.Arg("skipped", stats.records_skipped);
  return stats;
}

}  // namespace pcdb
