#ifndef PCDB_DURABILITY_WAL_H_
#define PCDB_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

/// \file
/// The write-ahead log that makes INGEST/PUNCTUATE acks durable
/// (docs/DURABILITY.md). The log is a directory of append-only segment
/// files; each record is length-prefixed and CRC-32C-checksummed:
///
///   uint32  body_len                      (bytes of `body`)
///   byte[body_len] body:
///     uint64  lsn                         (log sequence number)
///     uint8   type                        (WalRecordType)
///     u32+bytes tenant                    (length-prefixed)
///     uint64  writer_id                   (client identity; 0 = none)
///     uint64  seq                         (per-writer seq; 0 = none)
///     u32+bytes payload                   (wire-codec request payload)
///   uint32  crc32c(body)
///
/// All integers little-endian, matching the wire protocol. The payload
/// is the INGEST/PUNCTUATE frame payload verbatim (server/protocol.cc
/// codecs) — the durability layer treats it as opaque bytes, which is
/// what keeps this layer below `server` in the dependency DAG.
///
/// Group commit: WalWriter::AppendBatch encodes a whole writer batch
/// into one buffer, issues a single write(2) and a single fsync(2), so
/// the per-op durability cost is amortised over the batch (the
/// "batch ingest amortization" item from ROADMAP.md).
///
/// A torn or corrupt record (power loss mid-write, bit rot) terminates
/// replay cleanly at the last valid prefix — recovery never guesses at
/// record boundaries past a bad length/CRC.

namespace pcdb {

/// What a WAL record carries.
enum class WalRecordType : uint8_t {
  kIngest = 0,
  kPunctuate = 1,
};

/// \brief One WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kIngest;
  std::string tenant;
  /// Durable client identity for idempotent retry; 0 = none. Stable
  /// across the client's reconnects, unique per producer.
  uint64_t writer_id = 0;
  /// Per-writer monotonic sequence number; 0 = none (no dedup).
  uint64_t seq = 0;
  /// The request's wire payload (EncodeIngestPayload /
  /// EncodePunctuatePayload bytes), opaque to this layer.
  std::string payload;
};

/// Appends the full encoding (length prefix + body + CRC) of `record`
/// to `out`.
void AppendWalRecord(std::string* out, const WalRecord& record);

/// How DecodeWalRecord classified the bytes at the read position.
enum class WalDecodeOutcome {
  /// A complete, checksum-valid record was decoded.
  kRecord,
  /// The buffer ends mid-record (torn tail / truncated file).
  kTorn,
  /// The bytes are structurally complete but fail validation (bad CRC,
  /// unknown type tag, implausible length). Replay must stop: record
  /// boundaries past this point cannot be trusted.
  kCorrupt,
};

/// \brief Result of decoding one record from a byte range.
struct WalDecodeResult {
  WalDecodeOutcome outcome = WalDecodeOutcome::kTorn;
  WalRecord record;      ///< Valid when outcome == kRecord.
  size_t consumed = 0;   ///< Bytes consumed when outcome == kRecord.
  std::string detail;    ///< Human-readable reason for kTorn/kCorrupt.
};

/// Decodes the record starting at `data`. Never throws, never reads
/// past `len` — arbitrary bytes are safe input (fuzz/fuzz_wal.cc).
WalDecodeResult DecodeWalRecord(const uint8_t* data, size_t len);

/// \brief Knobs for WalWriter.
struct WalWriterOptions {
  /// Destination for wal_records_total / wal_fsyncs_total; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Floor for the first assigned LSN, typically `checkpoint LSN + 1`.
  /// Guards against a log directory whose segments were all truncated
  /// away while a checkpoint still references higher LSNs.
  uint64_t min_next_lsn = 0;
};

/// \brief Appending half of the WAL: owns the current segment file.
///
/// Not thread-safe; the server serializes all calls under its writer
/// mutex (one MVCC writer at a time is the design).
class WalWriter {
 public:
  /// Opens (creating if needed) the log directory, scans existing
  /// segments to find the next LSN, and truncates a torn tail left by
  /// a crash so new records append after the last valid one.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, const WalWriterOptions& options = {});

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Group commit: assigns consecutive LSNs to `records`, encodes them
  /// into one buffer, appends it with one write(2) and makes it
  /// durable with one fsync(2). On error nothing is acked — the caller
  /// must fail every op in the batch (acks imply durability).
  [[nodiscard]] Status AppendBatch(std::vector<WalRecord>* records);

  /// The LSN the next appended record will get (last assigned + 1).
  uint64_t next_lsn() const { return next_lsn_; }

  /// Checkpoint truncation: rotates to a fresh segment (first LSN =
  /// next_lsn()) and deletes every older segment whose records are all
  /// <= `durable_lsn` (their effects are in the checkpoint). Returns
  /// the number of segments removed.
  [[nodiscard]] Result<uint64_t> TruncateThrough(uint64_t durable_lsn);

  const std::string& dir() const { return dir_; }

 private:
  WalWriter() = default;

  /// Opens (O_CREAT|O_APPEND) the segment whose first LSN is `first`.
  [[nodiscard]] Status OpenSegment(uint64_t first_lsn);

  std::string dir_;
  int fd_ = -1;
  /// First LSN of the currently open segment (part of its file name).
  uint64_t segment_first_lsn_ = 1;
  uint64_t next_lsn_ = 1;
  Counter* c_records_ = nullptr;  ///< wal_records_total; may be null.
  Counter* c_fsyncs_ = nullptr;   ///< wal_fsyncs_total; may be null.
};

/// \brief What replay found in the log.
struct WalReplayStats {
  /// Records delivered to the callback (LSN > `after_lsn`).
  uint64_t records_replayed = 0;
  /// Records skipped because the checkpoint already covers them.
  uint64_t records_skipped = 0;
  /// True when replay stopped at a torn/corrupt record instead of the
  /// end of the log.
  bool torn_tail = false;
  /// Reason replay stopped early; empty for a clean end.
  std::string tail_detail;
};

/// Replays every valid record with LSN > `after_lsn` from the segments
/// in `dir` (oldest first), invoking `apply` for each. Stops cleanly at
/// the first torn/truncated/corrupt record (counted in
/// `wal_torn_tail_total`, detail in the stats) — everything before it
/// is recovered, everything after is unrecoverable by design. A missing
/// directory is an empty log. An error from `apply` aborts replay and
/// is returned.
[[nodiscard]] Result<WalReplayStats> ReplayWal(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& apply,
    MetricsRegistry* metrics = nullptr);

/// The log's segment files (absolute paths), oldest first. A missing
/// directory yields an empty list.
[[nodiscard]] Result<std::vector<std::string>> ListWalSegments(
    const std::string& dir);

}  // namespace pcdb

#endif  // PCDB_DURABILITY_WAL_H_
