#ifndef PCDB_DURABILITY_CHECKPOINT_H_
#define PCDB_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "pattern/annotated.h"

/// \file
/// Snapshot checkpointing (docs/DURABILITY.md §3): a checkpoint is one
/// binary file holding a full serialized AnnotatedDatabase — tables,
/// rows, patterns, attribute domains, table epochs and per-signature
/// pattern epochs — plus the idempotence dedup state and the LSN of the
/// last WAL record whose effects the snapshot includes. Recovery loads
/// the newest valid checkpoint and replays only the WAL tail past its
/// LSN; the WAL segments at or below it can then be truncated away.
///
/// The file is written atomically: serialize to `<path>.tmp`, fsync,
/// rename(2) over `<path>`. A crash mid-save leaves either the old
/// checkpoint or the new one, never a hybrid; a corrupt file (bad magic
/// or CRC) is reported as an error, distinct from a merely absent one.

namespace pcdb {

/// \brief Per-writer idempotence state carried across restarts.
struct CheckpointWriterState {
  /// Highest sequence number applied for this writer.
  uint64_t last_seq = 0;
  /// The encoded INGEST_RESULT payload that acknowledged `last_seq`,
  /// opaque to this layer; the server re-serves it (flagged duplicate)
  /// when the same sequence number is retried after a reconnect.
  std::string ack;
};

/// tenant -> writer_id -> state. writer_id 0 never appears (it opts out
/// of dedup).
using CheckpointWriters =
    std::map<std::string, std::map<uint64_t, CheckpointWriterState>>;

/// \brief Everything a checkpoint file holds.
struct CheckpointState {
  AnnotatedDatabase db;
  /// LSN of the last WAL record reflected in `db`; replay resumes after
  /// it.
  uint64_t last_lsn = 0;
  CheckpointWriters writers;
};

/// Serializes a snapshot to `path` atomically (tmp + fsync + rename).
/// `metrics` (may be null) receives `checkpoints_total`.
[[nodiscard]] Status SaveCheckpoint(const std::string& path,
                                    const AnnotatedDatabase& db,
                                    uint64_t last_lsn,
                                    const CheckpointWriters& writers,
                                    MetricsRegistry* metrics = nullptr);

/// Loads the checkpoint at `path`. Returns std::nullopt when no file
/// exists (fresh start) and an error when the file exists but fails
/// validation — a corrupt checkpoint must not be silently mistaken for
/// an empty database.
[[nodiscard]] Result<std::optional<CheckpointState>> LoadCheckpoint(
    const std::string& path);

}  // namespace pcdb

#endif  // PCDB_DURABILITY_CHECKPOINT_H_
