#include "durability/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "durability/crc32c.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace pcdb {

namespace {

/// File layout: kMagic, body (layout below), u32 crc32c(body).
constexpr char kMagic[] = "PCDBCKP1";
constexpr size_t kMagicLen = 8;

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  *out += s;
}

void AppendValue(std::string* out, const Value& v) {
  AppendU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      AppendU64(out, static_cast<uint64_t>(v.int64()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.dbl();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendU64(out, bits);
      break;
    }
    case ValueType::kString:
      AppendLengthPrefixed(out, v.str());
      break;
  }
}

/// Bounds-checked little-endian reader over the checkpoint body. Local
/// to this file — the server's PayloadReader lives a layer above.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  [[nodiscard]] Result<uint8_t> ReadU8() {
    PCDB_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(body_[pos_++]);
  }

  [[nodiscard]] Result<uint32_t> ReadU32() {
    PCDB_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(body_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] Result<uint64_t> ReadU64() {
    PCDB_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(body_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] Result<std::string> ReadLengthPrefixed() {
    PCDB_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    PCDB_RETURN_NOT_OK(Need(len));
    std::string s(body_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool Exhausted() const { return pos_ == body_.size(); }

 private:
  [[nodiscard]] Status Need(size_t n) {
    if (body_.size() - pos_ < n) {
      return Status::ParseError("checkpoint body truncated");
    }
    return Status::OK();
  }

  std::string_view body_;
  size_t pos_ = 0;
};

// Same GCC 12 PR105593 false positive as the protocol codecs: the
// string alternative of the Value variant trips -Wmaybe-uninitialized
// when moved out of a Result; clang and newer GCC are clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Result<Value> ReadValue(BodyReader* reader) {
  PCDB_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      PCDB_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadU64());
      return Value(static_cast<int64_t>(bits));
    }
    case ValueType::kDouble: {
      PCDB_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadU64());
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      PCDB_ASSIGN_OR_RETURN(std::string s, reader->ReadLengthPrefixed());
      return Value(std::move(s));
    }
  }
  return Status::ParseError("unknown value type tag " + std::to_string(tag));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Status ErrnoStatus(const std::string& op, int err) {
  return Status::Internal(op + " failed: " + std::strerror(err));
}

std::string SerializeBody(const AnnotatedDatabase& db, uint64_t last_lsn,
                          const CheckpointWriters& writers) {
  std::string body;
  AppendU64(&body, last_lsn);

  const std::vector<std::string> names = db.database().TableNames();
  AppendU32(&body, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    // TableNames() only returns registered tables, so GetTable cannot
    // fail here.
    const Table& table = **db.database().GetTable(name);
    AppendLengthPrefixed(&body, name);
    AppendU64(&body, db.database().TableEpoch(name));
    const Schema& schema = table.schema();
    AppendU32(&body, static_cast<uint32_t>(schema.arity()));
    for (const Column& column : schema.columns()) {
      AppendLengthPrefixed(&body, column.name);
      AppendU8(&body, static_cast<uint8_t>(column.type));
    }
    AppendU32(&body, static_cast<uint32_t>(table.num_rows()));
    for (const Tuple& row : table.rows()) {
      for (const Value& v : row) AppendValue(&body, v);
    }
    const PatternSet& patterns = db.patterns(name);
    AppendU32(&body, static_cast<uint32_t>(patterns.size()));
    for (const Pattern& pattern : patterns) {
      for (const Pattern::Cell& cell : pattern.cells()) {
        AppendU8(&body, cell.has_value() ? 1 : 0);
        if (cell.has_value()) AppendValue(&body, *cell);
      }
    }
    const std::map<uint64_t, uint64_t>& sig_epochs =
        db.PatternSigEpochs(name);
    AppendU32(&body, static_cast<uint32_t>(sig_epochs.size()));
    for (const auto& [sig, epoch] : sig_epochs) {
      AppendU64(&body, sig);
      AppendU64(&body, epoch);
    }
  }

  const auto& domains = db.domains().all();
  AppendU32(&body, static_cast<uint32_t>(domains.size()));
  for (const auto& [column, values] : domains) {
    AppendLengthPrefixed(&body, column);
    AppendU32(&body, static_cast<uint32_t>(values.size()));
    for (const Value& v : values) AppendValue(&body, v);
  }

  AppendU32(&body, static_cast<uint32_t>(writers.size()));
  for (const auto& [tenant, by_writer] : writers) {
    AppendLengthPrefixed(&body, tenant);
    AppendU32(&body, static_cast<uint32_t>(by_writer.size()));
    for (const auto& [writer_id, state] : by_writer) {
      AppendU64(&body, writer_id);
      AppendU64(&body, state.last_seq);
      AppendLengthPrefixed(&body, state.ack);
    }
  }
  return body;
}

Result<CheckpointState> DeserializeBody(std::string_view body) {
  BodyReader reader(body);
  CheckpointState state;
  PCDB_ASSIGN_OR_RETURN(state.last_lsn, reader.ReadU64());

  PCDB_ASSIGN_OR_RETURN(uint32_t num_tables, reader.ReadU32());
  for (uint32_t t = 0; t < num_tables; ++t) {
    PCDB_ASSIGN_OR_RETURN(std::string name, reader.ReadLengthPrefixed());
    PCDB_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadU64());
    PCDB_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    std::vector<Column> columns;
    columns.reserve(std::min<uint32_t>(arity, 256));
    for (uint32_t c = 0; c < arity; ++c) {
      Column column;
      PCDB_ASSIGN_OR_RETURN(column.name, reader.ReadLengthPrefixed());
      PCDB_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadU8());
      if (type_tag > static_cast<uint8_t>(ValueType::kString)) {
        return Status::ParseError("unknown column type tag " +
                                  std::to_string(type_tag));
      }
      column.type = static_cast<ValueType>(type_tag);
      columns.push_back(std::move(column));
    }
    Table table{Schema(std::move(columns))};
    PCDB_ASSIGN_OR_RETURN(uint32_t num_rows, reader.ReadU32());
    table.Reserve(std::min<uint32_t>(num_rows, 1u << 20));
    for (uint32_t r = 0; r < num_rows; ++r) {
      Tuple row;
      row.reserve(arity);
      for (uint32_t c = 0; c < arity; ++c) {
        PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
        row.push_back(std::move(v));
      }
      // The CRC already vouches for the bytes; Append's type check
      // would only re-verify what SerializeBody wrote.
      table.AppendUnchecked(std::move(row));
    }
    PCDB_ASSIGN_OR_RETURN(uint32_t num_patterns, reader.ReadU32());
    PatternSet patterns;
    patterns.Reserve(std::min<uint32_t>(num_patterns, 1u << 16));
    for (uint32_t p = 0; p < num_patterns; ++p) {
      std::vector<Pattern::Cell> cells;
      cells.reserve(arity);
      for (uint32_t c = 0; c < arity; ++c) {
        PCDB_ASSIGN_OR_RETURN(uint8_t has_value, reader.ReadU8());
        if (has_value > 1) {
          return Status::ParseError("bad pattern cell tag " +
                                    std::to_string(has_value));
        }
        if (has_value == 1) {
          PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
          cells.emplace_back(std::move(v));
        } else {
          cells.push_back(Pattern::Wildcard());
        }
      }
      patterns.Add(Pattern(std::move(cells)));
    }
    PCDB_ASSIGN_OR_RETURN(uint32_t num_sigs, reader.ReadU32());
    std::map<uint64_t, uint64_t> sig_epochs;
    for (uint32_t s = 0; s < num_sigs; ++s) {
      PCDB_ASSIGN_OR_RETURN(uint64_t sig, reader.ReadU64());
      PCDB_ASSIGN_OR_RETURN(uint64_t sig_epoch, reader.ReadU64());
      sig_epochs[sig] = sig_epoch;
    }
    // Rebuild, then pin the epochs last: PutTable bumps the table
    // epoch, and the recovered instance must resume the pre-crash
    // sequence, not the rebuild's.
    state.db.database().PutTable(name, std::move(table));
    if (!patterns.empty()) {
      state.db.SetEquivalentPatterns(name, std::move(patterns));
    }
    state.db.RestorePatternSigEpochs(name, std::move(sig_epochs));
    state.db.database().SetTableEpoch(name, epoch);
  }

  PCDB_ASSIGN_OR_RETURN(uint32_t num_domains, reader.ReadU32());
  for (uint32_t d = 0; d < num_domains; ++d) {
    PCDB_ASSIGN_OR_RETURN(std::string column, reader.ReadLengthPrefixed());
    PCDB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    std::vector<Value> values;
    values.reserve(std::min<uint32_t>(count, 1u << 16));
    for (uint32_t i = 0; i < count; ++i) {
      PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      values.push_back(std::move(v));
    }
    state.db.domains().SetDomain(column, std::move(values));
  }

  PCDB_ASSIGN_OR_RETURN(uint32_t num_tenants, reader.ReadU32());
  for (uint32_t t = 0; t < num_tenants; ++t) {
    PCDB_ASSIGN_OR_RETURN(std::string tenant, reader.ReadLengthPrefixed());
    PCDB_ASSIGN_OR_RETURN(uint32_t num_writers, reader.ReadU32());
    auto& by_writer = state.writers[tenant];
    for (uint32_t w = 0; w < num_writers; ++w) {
      PCDB_ASSIGN_OR_RETURN(uint64_t writer_id, reader.ReadU64());
      CheckpointWriterState writer_state;
      PCDB_ASSIGN_OR_RETURN(writer_state.last_seq, reader.ReadU64());
      PCDB_ASSIGN_OR_RETURN(writer_state.ack, reader.ReadLengthPrefixed());
      by_writer[writer_id] = std::move(writer_state);
    }
  }

  if (!reader.Exhausted()) {
    return Status::ParseError("trailing bytes after checkpoint body");
  }
  return state;
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const AnnotatedDatabase& db,
                      uint64_t last_lsn, const CheckpointWriters& writers,
                      MetricsRegistry* metrics) {
  PCDB_TRACE_SPAN(span, kSpanCheckpointSave);
  span.Arg("last_lsn", last_lsn);
  const std::string body = SerializeBody(db, last_lsn, writers);
  std::string file;
  file.reserve(kMagicLen + body.size() + 4);
  file.append(kMagic, kMagicLen);
  file += body;
  AppendU32(&file, Crc32c(body.data(), body.size()));

  PCDB_FAILPOINT("checkpoint.write");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + tmp, errno);
  size_t written = 0;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written,
                              file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write " + tmp, err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync " + tmp, err);
  }
  ::close(fd);

  PCDB_FAILPOINT("checkpoint.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename " + tmp, err);
  }
  // The rename itself must be durable too, or a crash can resurrect
  // the old checkpoint while the WAL was already truncated to the new
  // one. fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    if (::fsync(dir_fd) != 0) {
      const int err = errno;
      ::close(dir_fd);
      return ErrnoStatus("fsync " + dir, err);
    }
    ::close(dir_fd);
  }
  if (metrics != nullptr) {
    metrics->GetCounter(kMetricCheckpointsTotal)->Increment();
  }
  span.Arg("bytes", file.size());
  return Status::OK();
}

Result<std::optional<CheckpointState>> LoadCheckpoint(
    const std::string& path) {
  PCDB_TRACE_SPAN(span, kSpanRecoveryCheckpoint);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::optional<CheckpointState>();
    return ErrnoStatus("open " + path, errno);
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read " + path, err);
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (bytes.size() < kMagicLen + 4 ||
      bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::ParseError("not a checkpoint file: " + path);
  }
  const std::string_view body(bytes.data() + kMagicLen,
                              bytes.size() - kMagicLen - 4);
  const uint32_t stored_crc =
      static_cast<uint8_t>(bytes[bytes.size() - 4]) |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[bytes.size() - 3]))
          << 8 |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[bytes.size() - 2]))
          << 16 |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[bytes.size() - 1]))
          << 24;
  if (stored_crc != Crc32c(body.data(), body.size())) {
    return Status::ParseError("checkpoint checksum mismatch: " + path);
  }
  PCDB_ASSIGN_OR_RETURN(CheckpointState state, DeserializeBody(body));
  span.Arg("last_lsn", state.last_lsn);
  return std::optional<CheckpointState>(std::move(state));
}

}  // namespace pcdb
