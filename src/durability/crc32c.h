#ifndef PCDB_DURABILITY_CRC32C_H_
#define PCDB_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected form
/// 0x82F63B78) — the checksum guarding every WAL record and the
/// checkpoint file. Software table-driven implementation: no intrinsics,
/// no dependencies, byte-order independent, so a log written on one
/// machine verifies on any other.

namespace pcdb {

/// CRC-32C of `len` bytes at `data`, chained through `seed` (pass the
/// previous call's return value to checksum discontiguous buffers as
/// one stream; 0 for a fresh checksum).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace pcdb

#endif  // PCDB_DURABILITY_CRC32C_H_
