#include "durability/crc32c.h"

#include <array>

namespace pcdb {

namespace {

/// Table for the reflected Castagnoli polynomial, built once at first
/// use (constant-initialised would also work, but a lambda-built static
/// keeps the generator next to the math it implements).
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  // Standard reflected CRC: invert in, invert out. Chaining works
  // because the inversions cancel between calls.
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pcdb
