#ifndef PCDB_SERVER_PROTOCOL_H_
#define PCDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "pattern/annotated.h"

/// \file
/// The pcdbd wire protocol: a length-prefixed binary framing over TCP,
/// plus the payload codecs for queries and annotated answers.
///
/// Frame layout (all integers little-endian):
///
///   uint32  payload_len          (bytes after the 13-byte header)
///   uint8   frame_type           (FrameType)
///   uint64  request_id           (client-chosen; echoed by the server)
///   byte[payload_len] payload
///
/// Client -> server: QUERY, CANCEL, PING, STATS, INGEST, PUNCTUATE,
/// SHARD_INFO. Server -> client: per QUERY either ANSWER_SCHEMA,
/// ANSWER_ROWS*, ANSWER_PATTERNS, [ANSWER_PROFILE,] ANSWER_DONE — or a
/// single ERROR; PONG answers PING; STATS_RESULT answers STATS;
/// INGEST_RESULT (or ERROR) answers INGEST and PUNCTUATE;
/// SHARD_INFO_RESULT answers SHARD_INFO. All responses echo the request
/// id, so a client may pipeline requests over one connection.
///
/// The same framing doubles as the inter-node RPC of distributed pcdb
/// (src/dist/, docs/DISTRIBUTED.md): a coordinator speaks this protocol
/// unchanged on its front socket and as a client of each shard.
///
/// This header is also the single place where StatusCode is mapped onto
/// stable on-wire error codes (WireErrorCode): everything the server
/// sends and the client surfaces goes through EncodeErrorPayload /
/// DecodeErrorPayload, which is what makes client-observed errors
/// byte-for-byte identical to in-process evaluation errors. See
/// docs/SERVER.md for the full spec.

namespace pcdb {

/// Frame type tags. Client-originated types have the high bit clear,
/// server-originated types have it set.
enum class FrameType : uint8_t {
  // Client -> server.
  kQuery = 0x01,
  kCancel = 0x02,
  kPing = 0x03,
  kStats = 0x04,
  /// Streaming write path (§6 of the paper; docs/SERVER.md "Ingest"):
  /// a batch of rows for one table, with a late-record policy.
  kIngest = 0x05,
  /// A punctuation: completeness patterns asserted for one table.
  kPunctuate = 0x06,
  /// Admin: force a snapshot checkpoint (docs/DURABILITY.md). Empty
  /// payload, like PING. Runs through the write queue so it serializes
  /// with in-flight writes; answered by CHECKPOINT_RESULT (or ERROR
  /// when the server runs without a WAL).
  kCheckpoint = 0x07,
  /// Shard handshake (docs/DISTRIBUTED.md): asks a server for its shard
  /// placement (shard id / shard count / hashed tables) and its
  /// per-table epochs. Empty payload, like PING; answered by
  /// SHARD_INFO_RESULT. The coordinator uses it to verify each backend
  /// agrees on the partition map before routing anything, and the dist
  /// CI stage uses the epochs to assert convergence after a shard
  /// recovers.
  kShardInfo = 0x08,
  // Server -> client.
  kAnswerSchema = 0x80,
  kAnswerRows = 0x81,
  kAnswerPatterns = 0x82,
  kAnswerDone = 0x83,
  kError = 0x84,
  kPong = 0x85,
  kStatsResult = 0x86,
  /// Per-query EXPLAIN ANALYZE profile, sent between ANSWER_PATTERNS and
  /// ANSWER_DONE when the query set QueryRequest::kFlagProfile. The
  /// payload is the QueryProfileToJson text verbatim (no re-encoding on
  /// either side), so the profile a client receives is byte-identical to
  /// the one the server rendered. Not part of CanonicalBytes: the
  /// profile describes the evaluation, not the answer.
  kAnswerProfile = 0x87,
  /// Acknowledges an INGEST or PUNCTUATE frame with the write's outcome
  /// counters (IngestResult).
  kIngestResult = 0x88,
  /// Acknowledges a CHECKPOINT frame (CheckpointResult).
  kCheckpointResult = 0x89,
  /// Acknowledges a SHARD_INFO frame (ShardInfo payload).
  kShardInfoResult = 0x8A,
};

/// True if `tag` is one of the FrameType values.
bool IsKnownFrameType(uint8_t tag);

/// Fixed frame header size: u32 length + u8 type + u64 request id.
constexpr size_t kFrameHeaderBytes = 13;

/// Upper bound on a single frame's payload. A header announcing more is
/// treated as stream corruption and fails the connection.
constexpr size_t kMaxFramePayloadBytes = 64u << 20;

/// \brief One decoded protocol frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends the full encoding of a frame to `out`.
void AppendFrame(std::string* out, FrameType type, uint64_t request_id,
                 std::string_view payload);

/// Convenience: the full encoding of one frame.
std::string EncodeFrame(const Frame& frame);

/// \brief Incremental frame decoder: feed bytes as they arrive (in
/// arbitrary splits — see the server.read.short failpoint), pull frames
/// out as they complete.
class FrameReader {
 public:
  /// Appends raw bytes from the transport.
  void Feed(const char* data, size_t n);

  /// Decodes the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed. Fails with
  /// kInvalidArgument on malformed input (unknown frame type or an
  /// oversized length prefix) — the stream is unrecoverable after that.
  /// The "server.decode" failpoint fires once per decoded frame.
  [[nodiscard]] Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
};

/// \brief Stable on-wire error codes.
///
/// The numbering is part of the protocol and must never be reordered;
/// new codes are appended. (StatusCode itself is an implementation enum
/// that is free to change — this is the only place the two meet.)
enum class WireErrorCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeError = 5,
  kParseError = 6,
  kTimeout = 7,
  kCancelled = 8,
  kResourceExhausted = 9,
  kUnimplemented = 10,
  kInternal = 11,
  kUnavailable = 12,
};

/// StatusCode -> wire code (total: every StatusCode maps somewhere).
WireErrorCode WireErrorCodeFor(StatusCode code);

/// Wire code -> StatusCode; kInvalidArgument Status for unknown codes.
[[nodiscard]] Result<StatusCode> StatusCodeFromWire(uint16_t wire_code);

/// ERROR frame payload: u16 wire code + u32 message length + message.
std::string EncodeErrorPayload(const Status& status);

/// Reconstructs the Status carried by an ERROR payload into `*out`:
/// same code, same message text as the in-process Status it encodes.
/// The return value reports payload decode failures (Result<Status>
/// would collide with Result's own Status constructor).
[[nodiscard]] Status DecodeErrorPayload(std::string_view payload, Status* out);

/// \brief A QUERY frame's payload: execution limits + the SQL text.
struct QueryRequest {
  /// Bit 0: instance-aware completeness reasoning; bit 1: zombie
  /// patterns. Mirrors AnnotatedEvalOptions.
  uint32_t flags = 0;
  /// Per-request deadline in milliseconds; 0 = none.
  uint32_t deadline_millis = 0;
  /// Budgets; 0 = unlimited.
  uint64_t max_rows = 0;
  uint64_t max_patterns = 0;
  uint64_t max_memory_bytes = 0;
  std::string sql;
  /// Tenant name for per-tenant read admission quotas and priority
  /// tiers (the read-side mirror of IngestRequest::tenant); "" = the
  /// default tenant. Never part of the answer, so the server masks it
  /// out of the cache key.
  std::string tenant;

  /// Distributed trace context (docs/OBSERVABILITY.md "Tracing a fleet
  /// query"): carried as an optional trailing block so shard-side spans
  /// parent under the caller's span across process boundaries. 0 means
  /// "no trace context" and encodes to the pre-PR10 byte layout, so old
  /// and new peers interoperate. Never part of the answer, so the server
  /// keeps it out of the cache key (it lives outside `flags`).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// True when the sender's tracer was recording (Dapper-style sampled
  /// bit): the receiver records spans for this request iff its own
  /// tracer is enabled too, but forwards the flag downstream verbatim.
  bool trace_sampled = false;

  static constexpr uint32_t kFlagInstanceAware = 1u << 0;
  static constexpr uint32_t kFlagZombies = 1u << 1;
  /// Request a per-query profile: the server answers with an extra
  /// ANSWER_PROFILE frame before ANSWER_DONE. The flag never affects the
  /// answer bytes, so the server masks it out of the cache key.
  static constexpr uint32_t kFlagProfile = 1u << 2;
};

std::string EncodeQueryPayload(const QueryRequest& request);
[[nodiscard]] Result<QueryRequest> DecodeQueryPayload(std::string_view payload);

/// CANCEL frame payload: the request id to cancel.
std::string EncodeCancelPayload(uint64_t target_request_id);
[[nodiscard]] Result<uint64_t> DecodeCancelPayload(std::string_view payload);

/// \brief An INGEST frame's payload: a batch of rows for one table.
///
/// `policy` is the on-wire FeedViolationPolicy: 0 = reject late records
/// (trust the punctuation), 1 = retract violated patterns (trust the
/// data). The server applies the batch atomically with respect to
/// concurrent punctuations (FeedManager holds its mutex across the
/// violation check and the insert), row by row: a rejected row under
/// policy 0 counts in IngestResult::rows_rejected and the remaining
/// rows still apply.
struct IngestRequest {
  /// Tenant name for admission quotas/tiers; "" = the default tenant.
  std::string tenant;
  std::string table;
  uint8_t policy = 0;
  std::vector<Tuple> rows;
  /// Durable client identity for idempotent retry (docs/DURABILITY.md
  /// §5): random per Client instance, stable across its reconnects.
  /// 0 opts out of dedup.
  uint64_t writer_id = 0;
  /// Per-writer monotonic sequence number; echoed in IngestResult::seq.
  /// A retry resends the same seq, and the server applies it at most
  /// once. 0 = unsequenced (no dedup).
  uint64_t seq = 0;
  /// Optional trace context, as in QueryRequest (trace_id 0 = absent,
  /// encodes to the pre-PR10 byte layout).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;

  static constexpr uint8_t kPolicyRejectRecord = 0;
  static constexpr uint8_t kPolicyRetractPatterns = 1;
};

std::string EncodeIngestPayload(const IngestRequest& request);
[[nodiscard]] Result<IngestRequest> DecodeIngestPayload(std::string_view payload);

/// \brief A PUNCTUATE frame's payload: completeness patterns asserted
/// for one table, each as display fields ("*" = wildcard, constants in
/// Value::Parse text form) so the client needs no schema knowledge —
/// the server parses against the authoritative schema.
struct PunctuateRequest {
  std::string tenant;  ///< As in IngestRequest.
  std::string table;
  std::vector<std::vector<std::string>> patterns;
  uint64_t writer_id = 0;  ///< As in IngestRequest.
  uint64_t seq = 0;        ///< As in IngestRequest.
  uint64_t trace_id = 0;   ///< As in QueryRequest (0 = no trace context).
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;
};

std::string EncodePunctuatePayload(const PunctuateRequest& request);
[[nodiscard]] Result<PunctuateRequest> DecodePunctuatePayload(std::string_view payload);

/// \brief INGEST_RESULT payload: outcome counters for one INGEST or
/// PUNCTUATE frame (the delta this request caused, not cumulative
/// feed totals).
struct IngestResult {
  uint64_t rows_ingested = 0;
  uint64_t rows_rejected = 0;
  uint64_t punctuations = 0;
  uint64_t patterns_retracted = 0;
  uint64_t violations = 0;
  /// Echo of the request's sequence number (0 for unsequenced writes).
  uint64_t seq = 0;
  /// True when the server recognized `seq` as already applied and
  /// re-served the original ack instead of applying again.
  bool duplicate = false;
};

std::string EncodeIngestResultPayload(const IngestResult& result);
[[nodiscard]] Result<IngestResult> DecodeIngestResultPayload(std::string_view payload);

/// \brief CHECKPOINT_RESULT payload.
struct CheckpointResult {
  /// LSN of the last WAL record covered by the snapshot just written.
  uint64_t lsn = 0;
  /// WAL segments deleted by the post-checkpoint truncation.
  uint64_t wal_segments_removed = 0;
};

std::string EncodeCheckpointResultPayload(const CheckpointResult& result);
[[nodiscard]] Result<CheckpointResult> DecodeCheckpointResultPayload(
    std::string_view payload);

/// \brief One table's placement + version as reported by SHARD_INFO.
struct ShardTableInfo {
  std::string table;
  /// True when rows of this table are hash-partitioned across shards
  /// (and its completeness statements signature-partitioned); false for
  /// a fully replicated table.
  bool hashed = false;
  /// The table's data epoch on this server (bumped by every applied
  /// data mutation) — the convergence signal the dist CI stage polls.
  uint64_t epoch = 0;
};

/// \brief SHARD_INFO_RESULT payload: a server's shard-mode placement.
///
/// A server running without shard mode reports shard_id 0, num_shards 1
/// and no hashed tables; a coordinator answering on behalf of a fleet
/// reports shard_id kCoordinatorShardId and per-table epoch *sums*
/// across its shards.
struct ShardInfo {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  std::vector<ShardTableInfo> tables;

  /// Sentinel shard_id a coordinator reports for itself.
  static constexpr uint32_t kCoordinatorShardId = 0xFFFFFFFFu;
};

std::string EncodeShardInfoPayload(const ShardInfo& info);
[[nodiscard]] Result<ShardInfo> DecodeShardInfoPayload(
    std::string_view payload);

/// \brief Summary trailer carried by the ANSWER_DONE frame.
struct AnswerDone {
  bool degraded = false;    ///< Pattern set is a sound summary, not exact.
  bool cache_hit = false;   ///< Served from the answer cache.
  double data_millis = 0;   ///< Server-side data evaluation time.
  double pattern_millis = 0;  ///< Server-side pattern reasoning time.
};

std::string EncodeDonePayload(const AnswerDone& done);
[[nodiscard]] Result<AnswerDone> DecodeDonePayload(std::string_view payload);

/// \brief The serialized form of an annotated answer, split into the
/// frame payloads the server streams back: one schema payload, zero or
/// more row-batch payloads, one pattern-set payload.
///
/// This is both the answer cache's value type (encode once, send to any
/// number of clients) and the unit of the byte-identity contract: a
/// client that concatenates the payloads it received (CanonicalBytes)
/// gets exactly the bytes of EncodeAnswer() over the in-process
/// EvaluateAnnotated result.
struct EncodedAnswer {
  std::string schema;                    ///< ANSWER_SCHEMA payload.
  std::vector<std::string> row_batches;  ///< ANSWER_ROWS payloads.
  std::string patterns;                  ///< ANSWER_PATTERNS payload.
  bool degraded = false;

  /// Approximate heap footprint, used for cache accounting.
  size_t TotalBytes() const;

  /// schema + row batches + patterns + one degraded byte, concatenated.
  std::string CanonicalBytes() const;
};

/// Serializes an annotated answer. Rows are split into batches of at
/// most `rows_per_batch` rows AND at most `max_batch_bytes` payload
/// bytes (so batches of wide rows never exceed the frame limit; the
/// last batch may be short; an empty table yields no row batches). A
/// single row wider than `max_batch_bytes` still becomes one oversized
/// batch — CheckEncodedFrameSizes detects that case.
EncodedAnswer EncodeAnswer(const AnnotatedTable& answer,
                           size_t rows_per_batch = 256,
                           size_t max_batch_bytes = kMaxFramePayloadBytes);

/// Verifies every payload of `encoded` fits in one protocol frame
/// (kMaxFramePayloadBytes); kResourceExhausted otherwise. The server
/// runs this before framing an answer: a too-large schema, row batch
/// (single enormous row), or pattern payload becomes an explicit wire
/// error instead of a frame the peer rejects as stream corruption.
[[nodiscard]] Status CheckEncodedFrameSizes(const EncodedAnswer& encoded);

/// Exact inverse of EncodeAnswer.
[[nodiscard]] Result<AnnotatedTable> DecodeAnswer(const EncodedAnswer& encoded);

/// Individual payload codecs (exposed for the client, which receives the
/// payloads one frame at a time).
std::string EncodeSchemaPayload(const Schema& schema);
[[nodiscard]] Result<Schema> DecodeSchemaPayload(std::string_view payload);
std::string EncodeRowBatchPayload(const Table& table, size_t begin,
                                  size_t end);
/// Appends the batch's rows to `*table` (which must carry the schema).
[[nodiscard]] Status DecodeRowBatchPayload(std::string_view payload, Table* table);
std::string EncodePatternsPayload(const PatternSet& patterns);
[[nodiscard]] Result<PatternSet> DecodePatternsPayload(std::string_view payload);

}  // namespace pcdb

#endif  // PCDB_SERVER_PROTOCOL_H_
