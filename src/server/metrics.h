#ifndef PCDB_SERVER_METRICS_H_
#define PCDB_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

/// \file
/// A small metrics registry for the server: monotonic counters, signed
/// gauges, and fixed-bucket latency histograms with percentile
/// estimation. All metric updates are lock-free atomics; the registry
/// lock is only taken to create a metric or render a snapshot. The
/// server exports a registry snapshot as JSON via the STATS verb and
/// pcdbd --metrics-dump.

namespace pcdb {

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed value (in-flight requests, open
/// connections, cache bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Latency histogram over power-of-two microsecond buckets.
///
/// Bucket i counts samples in [2^i, 2^(i+1)) microseconds (bucket 0 also
/// absorbs sub-microsecond samples). 40 buckets cover up to ~12.7 days.
/// Quantile() interpolates linearly inside the winning bucket, so
/// percentiles carry at most one-bucket (2x) resolution error — plenty
/// for p50/p95/p99 load summaries.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void RecordMicros(uint64_t micros);
  void RecordMillis(double millis) {
    RecordMicros(millis <= 0 ? 0 : static_cast<uint64_t>(millis * 1000.0));
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean sample in milliseconds (0 when empty).
  double MeanMillis() const;

  /// Estimated q-quantile (q in [0,1]) in milliseconds; 0 when empty.
  double QuantileMillis(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// \brief Named metric registry. Get* creates on first use and returns a
/// stable pointer — callers cache the pointer and update lock-free.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) PCDB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) PCDB_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) PCDB_EXCLUDES(mu_);

  /// Convenience for tests/tools: current value of a counter (0 when the
  /// counter was never created).
  uint64_t CounterValue(const std::string& name) const PCDB_EXCLUDES(mu_);

  /// Snapshot as JSON:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"mean_ms":..,"p50_ms":..,
  ///                          "p95_ms":..,"p99_ms":..},...}}
  /// Keys are sorted, so output is deterministic.
  std::string ToJson() const PCDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PCDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PCDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PCDB_GUARDED_BY(mu_);
};

}  // namespace pcdb

#endif  // PCDB_SERVER_METRICS_H_
