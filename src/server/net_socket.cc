#include "server/net_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace pcdb {

namespace {

Status ErrnoStatus(const std::string& op, int err) {
  return Status::Internal(op + " failed: " + std::strerror(err));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetNonBlocking(bool non_blocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (non_blocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Status Socket::SetRecvTimeoutMillis(int millis) {
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
  }
  return Status::OK();
}

Status Socket::SetNoDelay(bool no_delay) {
  int flag = no_delay ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

Status Socket::ShutdownWrite() {
  if (::shutdown(fd_, SHUT_WR) < 0) {
    return ErrnoStatus("shutdown(SHUT_WR)", errno);
  }
  return Status::OK();
}

Result<IoResult> Socket::Recv(void* buf, size_t len) {
  PCDB_FAILPOINT("server.read");
  // Behavioural short-read fault: while armed, hand the decoder one byte
  // at a time. AnyActive() keeps the unarmed hot path to one relaxed
  // atomic load.
  if (Failpoints::Global().AnyActive() &&
      Failpoints::Global().IsActive("server.read.short")) {
    PCDB_RETURN_NOT_OK(Failpoints::Global().Hit("server.read.short"));
    if (len > 1) len = 1;
  }
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return IoResult{static_cast<size_t>(n), false, false};
    if (n == 0) return IoResult{0, false, true};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{0, true, false};
    }
    return ErrnoStatus("recv", errno);
  }
}

Result<IoResult> Socket::Send(const void* buf, size_t len) {
  PCDB_FAILPOINT("server.write");
  for (;;) {
    ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return IoResult{static_cast<size_t>(n), false, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{0, true, false};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable("peer closed the connection");
    }
    return ErrnoStatus("send", errno);
  }
}

Status Socket::SendAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    PCDB_ASSIGN_OR_RETURN(IoResult io, Send(p, len));
    if (io.would_block) {
      // Blocking socket: a would-block here means a send timeout.
      return Status::Timeout("send timed out");
    }
    p += io.bytes;
    len -= io.bytes;
  }
  return Status::OK();
}

Status Socket::RecvExact(void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    PCDB_ASSIGN_OR_RETURN(IoResult io, Recv(p, len));
    if (io.eof) {
      return Status::Unavailable("peer closed the connection mid-message");
    }
    if (io.would_block) {
      // SO_RCVTIMEO expiry on a blocking socket surfaces as EAGAIN.
      return Status::Timeout("receive timed out");
    }
    p += io.bytes;
    len -= io.bytes;
  }
  return Status::OK();
}

Result<Listener> Listener::BindAndListen(const std::string& host,
                                         uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Listener listener;
  listener.sock_ = Socket(fd);

  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd, backlog) < 0) return ErrnoStatus("listen", errno);

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);
  PCDB_RETURN_NOT_OK(listener.sock_.SetNonBlocking(true));
  return listener;
}

Result<Listener::AcceptResult> Listener::Accept() {
  PCDB_FAILPOINT("server.accept");
  for (;;) {
    int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      AcceptResult result;
      result.socket = Socket(fd);
      PCDB_RETURN_NOT_OK(result.socket.SetNoDelay(true));
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      AcceptResult result;
      result.would_block = true;
      return result;
    }
    // ECONNABORTED: the peer gave up while queued; not a listener error.
    if (errno == ECONNABORTED) continue;
    return ErrnoStatus("accept", errno);
  }
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Socket sock(fd);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad connect address '" + host + "'");
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    // A connect interrupted by a signal keeps completing in the
    // background (POSIX); re-calling ::connect then yields EALREADY,
    // and EISCONN once the handshake is done. So: EISCONN is success,
    // and for EINTR/EALREADY/EINPROGRESS the right move is to wait for
    // the socket to become writable and read the outcome from SO_ERROR
    // — not to retry ::connect verbatim.
    if (errno == EISCONN) break;
    if (errno == EINTR || errno == EALREADY || errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int rc;
      do {
        rc = ::poll(&pfd, 1, -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) return ErrnoStatus("poll", errno);
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
        return ErrnoStatus("getsockopt", errno);
      }
      if (so_error == 0) break;
      errno = so_error;
    }
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) +
                               " failed: " + std::strerror(errno));
  }
  PCDB_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Result<int> Poll(std::vector<PollItem>* items, int timeout_millis) {
  std::vector<struct pollfd> fds;
  fds.reserve(items->size());
  for (const PollItem& item : *items) {
    struct pollfd pfd;
    pfd.fd = item.fd;
    pfd.events = 0;
    if (item.want_read) pfd.events |= POLLIN;
    if (item.want_write) pfd.events |= POLLOUT;
    pfd.revents = 0;
    fds.push_back(pfd);
  }
  int n;
  for (;;) {
    n = ::poll(fds.data(), fds.size(), timeout_millis);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
  for (size_t i = 0; i < items->size(); ++i) {
    PollItem& item = (*items)[i];
    item.readable = (fds[i].revents & POLLIN) != 0;
    item.writable = (fds[i].revents & POLLOUT) != 0;
    item.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return n;
}

Result<WakePipe> WakePipe::Create() {
  int fds[2];
  if (::pipe(fds) < 0) return ErrnoStatus("pipe", errno);
  WakePipe pipe;
  pipe.read_end_ = Socket(fds[0]);
  pipe.write_end_ = Socket(fds[1]);
  PCDB_RETURN_NOT_OK(pipe.read_end_.SetNonBlocking(true));
  PCDB_RETURN_NOT_OK(pipe.write_end_.SetNonBlocking(true));
  return pipe;
}

void WakePipe::Notify() {
  char byte = 1;
  // A full pipe already guarantees a pending wake-up; EINTR on a
  // one-byte pipe write cannot leave a partial write behind.
  ssize_t ignored = ::write(write_end_.fd(), &byte, 1);
  (void)ignored;
}

void WakePipe::Drain() {
  char buf[256];
  for (;;) {
    ssize_t n = ::read(read_end_.fd(), buf, sizeof(buf));
    if (n <= 0) break;
  }
}

}  // namespace pcdb
