#include "server/protocol.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/failpoint.h"

namespace pcdb {

namespace {

// ---- Little-endian primitive writers/readers. --------------------------
//
// Explicit byte assembly (not memcpy of host integers) keeps the wire
// format identical across host endianness.

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendDouble(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader over a payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadU8() {
    PCDB_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint16_t> ReadU16() {
    PCDB_RETURN_NOT_OK(Need(2));
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<uint16_t>(
          v | static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
                  << (8 * i));
    }
    pos_ += 2;
    return v;
  }

  Result<uint32_t> ReadU32() {
    PCDB_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    PCDB_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> ReadDouble() {
    PCDB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    return std::bit_cast<double>(bits);
  }

  Result<std::string> ReadLengthPrefixed() {
    PCDB_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    PCDB_RETURN_NOT_OK(Need(len));
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::ParseError("truncated payload: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(remaining()));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status ExpectExhausted(const PayloadReader& reader, const char* what) {
  if (!reader.exhausted()) {
    return Status::ParseError(std::string(what) + " payload has " +
                              std::to_string(reader.remaining()) +
                              " trailing bytes");
  }
  return Status::OK();
}

// ---- Optional trailing trace-context block. ----------------------------
//
// QUERY/INGEST/PUNCTUATE payloads may end with 17 extra bytes carrying
// the sender's trace context: u64 trace_id, u64 parent_span_id, u8
// flags (bit 0 = sampled). The block is written only when trace_id is
// nonzero, so an untraced request encodes to the exact pre-trace byte
// layout and old/new peers interoperate. A payload that ends at the
// base boundary decodes as "no trace context"; a cut inside the block
// is a parse error like any other truncation, and a block announcing
// trace_id 0 or unknown flag bits is rejected outright.

void AppendTraceBlock(std::string* out, uint64_t trace_id,
                      uint64_t parent_span_id, bool sampled) {
  if (trace_id == 0) return;
  AppendU64(out, trace_id);
  AppendU64(out, parent_span_id);
  AppendU8(out, sampled ? 1 : 0);
}

Status ReadTraceBlock(PayloadReader* reader, uint64_t* trace_id,
                      uint64_t* parent_span_id, bool* sampled) {
  if (reader->exhausted()) return Status::OK();
  PCDB_ASSIGN_OR_RETURN(*trace_id, reader->ReadU64());
  PCDB_ASSIGN_OR_RETURN(*parent_span_id, reader->ReadU64());
  PCDB_ASSIGN_OR_RETURN(uint8_t flags, reader->ReadU8());
  if (*trace_id == 0) {
    return Status::ParseError("trace block carries trace_id 0");
  }
  if (flags > 1) {
    return Status::ParseError("unknown trace flag bits " +
                              std::to_string(flags));
  }
  *sampled = flags == 1;
  return Status::OK();
}

// ---- Value / pattern-cell codecs. --------------------------------------

void AppendValue(std::string* out, const Value& v) {
  AppendU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      AppendU64(out, static_cast<uint64_t>(v.int64()));
      break;
    case ValueType::kDouble:
      AppendDouble(out, v.dbl());
      break;
    case ValueType::kString:
      AppendLengthPrefixed(out, v.str());
      break;
  }
}

Result<Value> ReadValue(PayloadReader* reader) {
  PCDB_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt64): {
      PCDB_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadU64());
      return Value(static_cast<int64_t>(bits));
    }
    case static_cast<uint8_t>(ValueType::kDouble): {
      PCDB_ASSIGN_OR_RETURN(double d, reader->ReadDouble());
      return Value(d);
    }
    case static_cast<uint8_t>(ValueType::kString): {
      PCDB_ASSIGN_OR_RETURN(std::string s, reader->ReadLengthPrefixed());
      return Value(std::move(s));
    }
    default:
      return Status::ParseError("unknown value type tag " +
                                std::to_string(tag));
  }
}

constexpr uint8_t kCellWildcard = 0;
constexpr uint8_t kCellValue = 1;

}  // namespace

// ---- Framing. ----------------------------------------------------------

bool IsKnownFrameType(uint8_t tag) {
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kPing:
    case FrameType::kStats:
    case FrameType::kIngest:
    case FrameType::kPunctuate:
    case FrameType::kCheckpoint:
    case FrameType::kShardInfo:
    case FrameType::kIngestResult:
    case FrameType::kCheckpointResult:
    case FrameType::kShardInfoResult:
    case FrameType::kAnswerSchema:
    case FrameType::kAnswerRows:
    case FrameType::kAnswerPatterns:
    case FrameType::kAnswerDone:
    case FrameType::kError:
    case FrameType::kPong:
    case FrameType::kStatsResult:
    case FrameType::kAnswerProfile:
      return true;
  }
  return false;
}

void AppendFrame(std::string* out, FrameType type, uint64_t request_id,
                 std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU8(out, static_cast<uint8_t>(type));
  AppendU64(out, request_id);
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrame(&out, frame.type, frame.request_id, frame.payload);
  return out;
}

void FrameReader::Feed(const char* data, size_t n) {
  // Reclaim the consumed prefix before growing, so a long-lived
  // connection doesn't accumulate dead bytes.
  if (pos_ > 0 && (pos_ >= 4096 || pos_ == buf_.size())) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

Result<bool> FrameReader::Next(Frame* out) {
  if (buffered_bytes() < kFrameHeaderBytes) return false;
  PayloadReader header(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  PCDB_ASSIGN_OR_RETURN(uint32_t payload_len, header.ReadU32());
  PCDB_ASSIGN_OR_RETURN(uint8_t type_tag, header.ReadU8());
  PCDB_ASSIGN_OR_RETURN(uint64_t request_id, header.ReadU64());
  if (payload_len > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(payload_len) +
                                   " exceeds the protocol maximum");
  }
  if (!IsKnownFrameType(type_tag)) {
    return Status::InvalidArgument("unknown frame type 0x" +
                                   std::to_string(type_tag));
  }
  if (buffered_bytes() < kFrameHeaderBytes + payload_len) return false;
  PCDB_FAILPOINT("server.decode");
  out->type = static_cast<FrameType>(type_tag);
  out->request_id = request_id;
  out->payload.assign(buf_, pos_ + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return true;
}

// ---- Error codes. ------------------------------------------------------

WireErrorCode WireErrorCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireErrorCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireErrorCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireErrorCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireErrorCode::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return WireErrorCode::kOutOfRange;
    case StatusCode::kTypeError:
      return WireErrorCode::kTypeError;
    case StatusCode::kParseError:
      return WireErrorCode::kParseError;
    case StatusCode::kTimeout:
      return WireErrorCode::kTimeout;
    case StatusCode::kCancelled:
      return WireErrorCode::kCancelled;
    case StatusCode::kResourceExhausted:
      return WireErrorCode::kResourceExhausted;
    case StatusCode::kUnimplemented:
      return WireErrorCode::kUnimplemented;
    case StatusCode::kInternal:
      return WireErrorCode::kInternal;
    case StatusCode::kUnavailable:
      return WireErrorCode::kUnavailable;
  }
  return WireErrorCode::kInternal;
}

Result<StatusCode> StatusCodeFromWire(uint16_t wire_code) {
  switch (static_cast<WireErrorCode>(wire_code)) {
    case WireErrorCode::kOk:
      return StatusCode::kOk;
    case WireErrorCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireErrorCode::kNotFound:
      return StatusCode::kNotFound;
    case WireErrorCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case WireErrorCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case WireErrorCode::kTypeError:
      return StatusCode::kTypeError;
    case WireErrorCode::kParseError:
      return StatusCode::kParseError;
    case WireErrorCode::kTimeout:
      return StatusCode::kTimeout;
    case WireErrorCode::kCancelled:
      return StatusCode::kCancelled;
    case WireErrorCode::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case WireErrorCode::kUnimplemented:
      return StatusCode::kUnimplemented;
    case WireErrorCode::kInternal:
      return StatusCode::kInternal;
    case WireErrorCode::kUnavailable:
      return StatusCode::kUnavailable;
  }
  return Status::InvalidArgument("unknown wire error code " +
                                 std::to_string(wire_code));
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(WireErrorCodeFor(status.code())));
  AppendLengthPrefixed(&out, status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload, Status* out) {
  PayloadReader reader(payload);
  PCDB_ASSIGN_OR_RETURN(uint16_t wire_code, reader.ReadU16());
  PCDB_ASSIGN_OR_RETURN(StatusCode code, StatusCodeFromWire(wire_code));
  PCDB_ASSIGN_OR_RETURN(std::string message, reader.ReadLengthPrefixed());
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "error"));
  *out = code == StatusCode::kOk ? Status::OK()
                                 : Status(code, std::move(message));
  return Status::OK();
}

// ---- Query / cancel / done payloads. -----------------------------------

std::string EncodeQueryPayload(const QueryRequest& request) {
  std::string out;
  AppendU32(&out, request.flags);
  AppendU32(&out, request.deadline_millis);
  AppendU64(&out, request.max_rows);
  AppendU64(&out, request.max_patterns);
  AppendU64(&out, request.max_memory_bytes);
  AppendLengthPrefixed(&out, request.sql);
  AppendLengthPrefixed(&out, request.tenant);
  AppendTraceBlock(&out, request.trace_id, request.parent_span_id,
                   request.trace_sampled);
  return out;
}

Result<QueryRequest> DecodeQueryPayload(std::string_view payload) {
  PayloadReader reader(payload);
  QueryRequest request;
  PCDB_ASSIGN_OR_RETURN(request.flags, reader.ReadU32());
  PCDB_ASSIGN_OR_RETURN(request.deadline_millis, reader.ReadU32());
  PCDB_ASSIGN_OR_RETURN(request.max_rows, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(request.max_patterns, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(request.max_memory_bytes, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(request.sql, reader.ReadLengthPrefixed());
  PCDB_ASSIGN_OR_RETURN(request.tenant, reader.ReadLengthPrefixed());
  PCDB_RETURN_NOT_OK(ReadTraceBlock(&reader, &request.trace_id,
                                    &request.parent_span_id,
                                    &request.trace_sampled));
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "query"));
  return request;
}

std::string EncodeCancelPayload(uint64_t target_request_id) {
  std::string out;
  AppendU64(&out, target_request_id);
  return out;
}

Result<uint64_t> DecodeCancelPayload(std::string_view payload) {
  PayloadReader reader(payload);
  PCDB_ASSIGN_OR_RETURN(uint64_t target, reader.ReadU64());
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "cancel"));
  return target;
}

std::string EncodeIngestPayload(const IngestRequest& request) {
  std::string out;
  AppendLengthPrefixed(&out, request.tenant);
  AppendLengthPrefixed(&out, request.table);
  AppendU8(&out, request.policy);
  AppendU32(&out, static_cast<uint32_t>(request.rows.size()));
  for (const Tuple& row : request.rows) {
    AppendU32(&out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) AppendValue(&out, v);
  }
  AppendU64(&out, request.writer_id);
  AppendU64(&out, request.seq);
  AppendTraceBlock(&out, request.trace_id, request.parent_span_id,
                   request.trace_sampled);
  return out;
}

// GCC 12 falsely reports the string alternative of the Value variant
// "maybe uninitialized" when ReadValue results are moved into
// containers (the PR105593 family, same as Value::Parse in
// common/value.cc); clang and newer GCC are clean. Scoped to the
// value-decoding functions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Result<IngestRequest> DecodeIngestPayload(std::string_view payload) {
  PayloadReader reader(payload);
  IngestRequest request;
  PCDB_ASSIGN_OR_RETURN(request.tenant, reader.ReadLengthPrefixed());
  PCDB_ASSIGN_OR_RETURN(request.table, reader.ReadLengthPrefixed());
  PCDB_ASSIGN_OR_RETURN(request.policy, reader.ReadU8());
  if (request.policy > IngestRequest::kPolicyRetractPatterns) {
    return Status::ParseError("unknown ingest policy tag " +
                              std::to_string(request.policy));
  }
  PCDB_ASSIGN_OR_RETURN(uint32_t num_rows, reader.ReadU32());
  request.rows.reserve(std::min<uint32_t>(num_rows, 4096));
  for (uint32_t r = 0; r < num_rows; ++r) {
    PCDB_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    Tuple row;
    row.reserve(std::min<uint32_t>(arity, 256));
    for (uint32_t i = 0; i < arity; ++i) {
      PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      row.push_back(std::move(v));
    }
    request.rows.push_back(std::move(row));
  }
  PCDB_ASSIGN_OR_RETURN(request.writer_id, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(request.seq, reader.ReadU64());
  PCDB_RETURN_NOT_OK(ReadTraceBlock(&reader, &request.trace_id,
                                    &request.parent_span_id,
                                    &request.trace_sampled));
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "ingest"));
  return request;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::string EncodePunctuatePayload(const PunctuateRequest& request) {
  std::string out;
  AppendLengthPrefixed(&out, request.tenant);
  AppendLengthPrefixed(&out, request.table);
  AppendU32(&out, static_cast<uint32_t>(request.patterns.size()));
  for (const std::vector<std::string>& fields : request.patterns) {
    AppendU32(&out, static_cast<uint32_t>(fields.size()));
    for (const std::string& field : fields) {
      AppendLengthPrefixed(&out, field);
    }
  }
  AppendU64(&out, request.writer_id);
  AppendU64(&out, request.seq);
  AppendTraceBlock(&out, request.trace_id, request.parent_span_id,
                   request.trace_sampled);
  return out;
}

Result<PunctuateRequest> DecodePunctuatePayload(std::string_view payload) {
  PayloadReader reader(payload);
  PunctuateRequest request;
  PCDB_ASSIGN_OR_RETURN(request.tenant, reader.ReadLengthPrefixed());
  PCDB_ASSIGN_OR_RETURN(request.table, reader.ReadLengthPrefixed());
  PCDB_ASSIGN_OR_RETURN(uint32_t num_patterns, reader.ReadU32());
  request.patterns.reserve(std::min<uint32_t>(num_patterns, 4096));
  for (uint32_t p = 0; p < num_patterns; ++p) {
    PCDB_ASSIGN_OR_RETURN(uint32_t num_fields, reader.ReadU32());
    std::vector<std::string> fields;
    fields.reserve(std::min<uint32_t>(num_fields, 256));
    for (uint32_t i = 0; i < num_fields; ++i) {
      PCDB_ASSIGN_OR_RETURN(std::string field, reader.ReadLengthPrefixed());
      fields.push_back(std::move(field));
    }
    request.patterns.push_back(std::move(fields));
  }
  PCDB_ASSIGN_OR_RETURN(request.writer_id, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(request.seq, reader.ReadU64());
  PCDB_RETURN_NOT_OK(ReadTraceBlock(&reader, &request.trace_id,
                                    &request.parent_span_id,
                                    &request.trace_sampled));
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "punctuate"));
  return request;
}

std::string EncodeIngestResultPayload(const IngestResult& result) {
  std::string out;
  AppendU64(&out, result.rows_ingested);
  AppendU64(&out, result.rows_rejected);
  AppendU64(&out, result.punctuations);
  AppendU64(&out, result.patterns_retracted);
  AppendU64(&out, result.violations);
  AppendU64(&out, result.seq);
  AppendU8(&out, result.duplicate ? 1 : 0);
  return out;
}

Result<IngestResult> DecodeIngestResultPayload(std::string_view payload) {
  PayloadReader reader(payload);
  IngestResult result;
  PCDB_ASSIGN_OR_RETURN(result.rows_ingested, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.rows_rejected, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.punctuations, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.patterns_retracted, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.violations, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.seq, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(uint8_t duplicate, reader.ReadU8());
  if (duplicate > 1) {
    return Status::ParseError("bad duplicate flag " +
                              std::to_string(duplicate));
  }
  result.duplicate = duplicate == 1;
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "ingest result"));
  return result;
}

std::string EncodeCheckpointResultPayload(const CheckpointResult& result) {
  std::string out;
  AppendU64(&out, result.lsn);
  AppendU64(&out, result.wal_segments_removed);
  return out;
}

Result<CheckpointResult> DecodeCheckpointResultPayload(
    std::string_view payload) {
  PayloadReader reader(payload);
  CheckpointResult result;
  PCDB_ASSIGN_OR_RETURN(result.lsn, reader.ReadU64());
  PCDB_ASSIGN_OR_RETURN(result.wal_segments_removed, reader.ReadU64());
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "checkpoint result"));
  return result;
}

std::string EncodeShardInfoPayload(const ShardInfo& info) {
  std::string out;
  AppendU32(&out, info.shard_id);
  AppendU32(&out, info.num_shards);
  AppendU32(&out, static_cast<uint32_t>(info.tables.size()));
  for (const ShardTableInfo& t : info.tables) {
    AppendLengthPrefixed(&out, t.table);
    AppendU8(&out, t.hashed ? 1 : 0);
    AppendU64(&out, t.epoch);
  }
  return out;
}

Result<ShardInfo> DecodeShardInfoPayload(std::string_view payload) {
  PayloadReader reader(payload);
  ShardInfo info;
  PCDB_ASSIGN_OR_RETURN(info.shard_id, reader.ReadU32());
  PCDB_ASSIGN_OR_RETURN(info.num_shards, reader.ReadU32());
  if (info.num_shards == 0) {
    return Status::ParseError("shard info reports zero shards");
  }
  PCDB_ASSIGN_OR_RETURN(uint32_t num_tables, reader.ReadU32());
  info.tables.reserve(std::min<uint32_t>(num_tables, 4096));
  for (uint32_t i = 0; i < num_tables; ++i) {
    ShardTableInfo t;
    PCDB_ASSIGN_OR_RETURN(t.table, reader.ReadLengthPrefixed());
    PCDB_ASSIGN_OR_RETURN(uint8_t hashed, reader.ReadU8());
    if (hashed > 1) {
      return Status::ParseError("bad hashed flag " + std::to_string(hashed));
    }
    t.hashed = hashed == 1;
    PCDB_ASSIGN_OR_RETURN(t.epoch, reader.ReadU64());
    info.tables.push_back(std::move(t));
  }
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "shard info"));
  return info;
}

std::string EncodeDonePayload(const AnswerDone& done) {
  std::string out;
  AppendU8(&out, done.degraded ? 1 : 0);
  AppendU8(&out, done.cache_hit ? 1 : 0);
  AppendDouble(&out, done.data_millis);
  AppendDouble(&out, done.pattern_millis);
  return out;
}

Result<AnswerDone> DecodeDonePayload(std::string_view payload) {
  PayloadReader reader(payload);
  AnswerDone done;
  PCDB_ASSIGN_OR_RETURN(uint8_t degraded, reader.ReadU8());
  PCDB_ASSIGN_OR_RETURN(uint8_t cache_hit, reader.ReadU8());
  done.degraded = degraded != 0;
  done.cache_hit = cache_hit != 0;
  PCDB_ASSIGN_OR_RETURN(done.data_millis, reader.ReadDouble());
  PCDB_ASSIGN_OR_RETURN(done.pattern_millis, reader.ReadDouble());
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "done"));
  return done;
}

// ---- Answer payloads. --------------------------------------------------

std::string EncodeSchemaPayload(const Schema& schema) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(schema.arity()));
  for (const Column& col : schema.columns()) {
    AppendLengthPrefixed(&out, col.name);
    AppendU8(&out, static_cast<uint8_t>(col.type));
  }
  return out;
}

Result<Schema> DecodeSchemaPayload(std::string_view payload) {
  PayloadReader reader(payload);
  PCDB_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
  std::vector<Column> columns;
  columns.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Column col;
    PCDB_ASSIGN_OR_RETURN(col.name, reader.ReadLengthPrefixed());
    PCDB_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadU8());
    if (type_tag > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("unknown column type tag " +
                                std::to_string(type_tag));
    }
    col.type = static_cast<ValueType>(type_tag);
    columns.push_back(std::move(col));
  }
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "schema"));
  return Schema(std::move(columns));
}

std::string EncodeRowBatchPayload(const Table& table, size_t begin,
                                  size_t end) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t r = begin; r < end; ++r) {
    for (const Value& v : table.row(r)) AppendValue(&out, v);
  }
  return out;
}

// Same PR105593 false-positive scope as DecodeIngestPayload above.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Status DecodeRowBatchPayload(std::string_view payload, Table* table) {
  PayloadReader reader(payload);
  PCDB_ASSIGN_OR_RETURN(uint32_t num_rows, reader.ReadU32());
  const size_t arity = table->schema().arity();
  for (uint32_t r = 0; r < num_rows; ++r) {
    std::vector<Value> values;
    values.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      values.push_back(std::move(v));
    }
    // Append (not AppendUnchecked): a corrupt or malicious peer must
    // surface as a Status, not as a type-confused table.
    PCDB_RETURN_NOT_OK(table->Append(std::move(values)));
  }
  return ExpectExhausted(reader, "row batch");
}

std::string EncodePatternsPayload(const PatternSet& patterns) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(patterns.size()));
  for (const Pattern& p : patterns) {
    AppendU32(&out, static_cast<uint32_t>(p.arity()));
    for (size_t i = 0; i < p.arity(); ++i) {
      if (p.IsWildcard(i)) {
        AppendU8(&out, kCellWildcard);
      } else {
        AppendU8(&out, kCellValue);
        AppendValue(&out, p.value(i));
      }
    }
  }
  return out;
}

Result<PatternSet> DecodePatternsPayload(std::string_view payload) {
  PayloadReader reader(payload);
  PCDB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  PatternSet set;
  set.Reserve(count);
  for (uint32_t n = 0; n < count; ++n) {
    PCDB_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    std::vector<Pattern::Cell> cells;
    cells.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      PCDB_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
      if (tag == kCellWildcard) {
        cells.push_back(Pattern::Wildcard());
      } else if (tag == kCellValue) {
        PCDB_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
        cells.emplace_back(std::move(v));
      } else {
        return Status::ParseError("unknown pattern cell tag " +
                                  std::to_string(tag));
      }
    }
    set.Add(Pattern(std::move(cells)));
  }
  PCDB_RETURN_NOT_OK(ExpectExhausted(reader, "patterns"));
  return set;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

size_t EncodedAnswer::TotalBytes() const {
  size_t total = schema.size() + patterns.size() + sizeof(*this);
  for (const std::string& batch : row_batches) total += batch.size();
  return total;
}

std::string EncodedAnswer::CanonicalBytes() const {
  std::string out = schema;
  for (const std::string& batch : row_batches) out += batch;
  out += patterns;
  out.push_back(degraded ? 1 : 0);
  return out;
}

namespace {

/// Exact encoded size of one value, mirroring AppendValue.
size_t EncodedValueBytes(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + v.str().size();
  }
  return 1;
}

size_t EncodedRowBytes(const Table& table, size_t r) {
  size_t bytes = 0;
  for (const Value& v : table.row(r)) bytes += EncodedValueBytes(v);
  return bytes;
}

}  // namespace

EncodedAnswer EncodeAnswer(const AnnotatedTable& answer,
                           size_t rows_per_batch, size_t max_batch_bytes) {
  if (rows_per_batch == 0) rows_per_batch = 1;
  if (max_batch_bytes == 0) max_batch_bytes = kMaxFramePayloadBytes;
  EncodedAnswer encoded;
  encoded.schema = EncodeSchemaPayload(answer.data.schema());
  const size_t num_rows = answer.data.num_rows();
  size_t begin = 0;
  while (begin < num_rows) {
    // Close the batch at rows_per_batch rows OR when the next row would
    // push the payload past max_batch_bytes — whichever comes first — so
    // wide rows can't assemble a frame the peer's FrameReader rejects.
    // A single row wider than the cap still becomes its own (oversized)
    // batch; CheckEncodedFrameSizes catches that before it hits a wire.
    size_t end = begin;
    size_t bytes = 4;  // the row-count prefix
    while (end < num_rows && end - begin < rows_per_batch) {
      const size_t row_bytes = EncodedRowBytes(answer.data, end);
      if (end > begin && bytes + row_bytes > max_batch_bytes) break;
      bytes += row_bytes;
      ++end;
    }
    encoded.row_batches.push_back(
        EncodeRowBatchPayload(answer.data, begin, end));
    begin = end;
  }
  encoded.patterns = EncodePatternsPayload(answer.patterns);
  encoded.degraded = answer.degraded;
  return encoded;
}

Status CheckEncodedFrameSizes(const EncodedAnswer& encoded) {
  size_t worst = std::max(encoded.schema.size(), encoded.patterns.size());
  for (const std::string& batch : encoded.row_batches) {
    worst = std::max(worst, batch.size());
  }
  if (worst > kMaxFramePayloadBytes) {
    return Status::ResourceExhausted(
        "answer payload of " + std::to_string(worst) +
        " bytes exceeds the protocol frame limit of " +
        std::to_string(kMaxFramePayloadBytes) +
        " bytes; narrow the query or set max_rows/max_patterns budgets");
  }
  return Status::OK();
}

Result<AnnotatedTable> DecodeAnswer(const EncodedAnswer& encoded) {
  AnnotatedTable answer;
  PCDB_ASSIGN_OR_RETURN(Schema schema, DecodeSchemaPayload(encoded.schema));
  answer.data = Table(std::move(schema));
  for (const std::string& batch : encoded.row_batches) {
    PCDB_RETURN_NOT_OK(DecodeRowBatchPayload(batch, &answer.data));
  }
  PCDB_ASSIGN_OR_RETURN(answer.patterns,
                        DecodePatternsPayload(encoded.patterns));
  answer.degraded = encoded.degraded;
  return answer;
}

}  // namespace pcdb
