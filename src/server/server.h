#ifndef PCDB_SERVER_SERVER_H_
#define PCDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "pattern/annotated.h"
#include "server/answer_cache.h"
#include "server/net_socket.h"
#include "server/protocol.h"

/// \file
/// pcdbd's serving core: a poll(2)-driven event loop accepting
/// concurrent client connections, an eval worker pool running governed
/// EvaluateAnnotated per query, an admission controller bounding
/// concurrent and queued work, and the answer cache.
///
/// Threading model:
///  - One event-loop task owns all connection state (sockets, frame
///    readers, outbound buffers, per-request cancellation tokens). It
///    never blocks on a socket and never evaluates a query.
///  - Query jobs run on the eval pool against an immutable database
///    snapshot (shared_ptr, copy-on-write under UpdateDatabase) and
///    post their result to a completion queue; a self-pipe wakes the
///    loop, which frames the answer onto the right connection.
///  - CANCEL is handled entirely on the loop thread: it flips the
///    job's CancellationToken (atomic), and the governed evaluator
///    returns kCancelled at its next checkpoint.
///
/// Admission control: at most `max_inflight` queries evaluate at once;
/// beyond that, up to `max_queued_per_connection` queries wait per
/// connection, and anything further is shed immediately with a
/// kUnavailable wire error (never silently dropped).
///
/// Write path (INGEST/PUNCTUATE): writes never enter the query
/// admission path. They queue on a bounded pending-write queue (global
/// cap + per-tenant quota; excess is shed with kUnavailable) and are
/// drained by a single writer job on the eval pool, highest tenant tier
/// first. The writer builds the next copy-on-write snapshot *outside*
/// db_mu_ — readers keep taking the current snapshot while the copy and
/// the FeedManager mutations run — then swaps the pointer under db_mu_
/// and invalidates only the answer-cache entries the epoch diff proves
/// stale (whole table for data changes and pattern retractions, one
/// pattern signature for pattern additions). One writer at a time plus
/// a bounded queue is what keeps ingest from starving queries: writes
/// occupy at most one eval worker regardless of arrival rate.

namespace pcdb {

/// \brief Tunables for a Server instance.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read back via Server::port()).
  uint16_t port = 0;
  /// Eval pool workers. Values < 2 are raised to 2: a 1-thread pool runs
  /// tasks inline in the submitter (common/thread_pool.h), which here is
  /// the event loop — queries would block frame processing and CANCEL
  /// could never overtake the query it targets.
  size_t eval_threads = 4;
  /// AnnotatedEvalOptions.num_threads for each query (intra-query
  /// parallelism); 1 = serial, deterministic answer bytes.
  size_t eval_threads_per_query = 1;
  /// Admission: queries evaluating concurrently before queueing starts.
  size_t max_inflight = 4;
  /// Admission: queries waiting per connection before shedding starts.
  size_t max_queued_per_connection = 8;
  /// Connection cap. Surplus connections are accepted and immediately
  /// closed (the client sees EOF, counted as `connections_rejected`)
  /// rather than left hanging in the kernel backlog.
  size_t max_connections = 256;
  /// Answer cache sizing; `enable_cache = false` disables caching.
  AnswerCache::Options cache;
  bool enable_cache = true;
  /// Rows per ANSWER_ROWS frame.
  size_t rows_per_batch = 256;
  /// Poll timeout; bounds Stop() latency when the server is idle.
  int poll_millis = 100;
  /// Consecutive Poll() failures tolerated (with warn logs and bounded
  /// backoff) before the event loop gives up and exits. A persistent
  /// EBADF/ENOMEM must neither spin a core nor loop forever.
  size_t max_poll_errors = 64;
  /// Write queue: pending INGEST/PUNCTUATE ops buffered before new
  /// writes are shed with kUnavailable.
  size_t max_pending_writes = 256;
  /// Per-tenant share of the pending-write queue (0 = no per-tenant
  /// cap). One tenant flooding writes is shed at its quota while other
  /// tenants' writes — and all queries — proceed.
  size_t tenant_write_quota = 64;
  /// Priority tiers: tenant name -> tier. The writer drains pending
  /// writes highest tier first (FIFO within a tier); unlisted tenants
  /// (including the default "" tenant) are tier 0. The same tiers order
  /// *read* admission: when eval slots free up, the highest-tier queued
  /// query is dispatched first (FIFO within a tier).
  std::map<std::string, uint32_t> tenant_tiers;
  /// Per-tenant cap on admitted queries (in flight + queued), the read
  /// mirror of tenant_write_quota: a tenant at its quota is shed with
  /// kUnavailable (counted in queries_shed_total, plus a per-tenant
  /// `queries_shed_total.<tenant>` counter for tenants listed in
  /// tenant_tiers — unlisted tenants aggregate under
  /// `queries_shed_total.other`, so wire-supplied names cannot grow
  /// the registry unboundedly). 0 = no per-tenant cap.
  size_t tenant_read_quota = 0;
  /// Shard-mode placement (docs/DISTRIBUTED.md): this server's shard id
  /// and the total shard count. The default (shard 0 of 1) is a
  /// non-sharded server; both are reported in SHARD_INFO_RESULT.
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  /// Tables partitioned by row hash (everything else is replicated).
  /// With num_shards > 1, an INGEST into a hashed table is broadcast by
  /// the coordinator and filtered here: rows this shard owns
  /// (ShardForRow == shard_id) are stored; rows it does not own only
  /// retract the local completeness patterns they violate (patterns are
  /// partitioned by constant signature, not by row hash). PUNCTUATE
  /// patterns this shard does not own (ShardForPattern != shard_id) are
  /// skipped.
  std::set<std::string> hashed_tables;
  /// Slow-query log threshold: a query whose total server-side time
  /// (queue wait + evaluation + encode) reaches this many milliseconds
  /// is logged at warn level with its SQL and timings. 0 disables.
  double slow_query_millis = 0;
  /// WAL + checkpoint directory (docs/DURABILITY.md). Empty = run
  /// purely in memory (the pre-WAL behavior): no logging, no recovery,
  /// CHECKPOINT frames answered with kUnavailable.
  std::string wal_dir;
  /// Automatic checkpoint cadence: a snapshot is written after this
  /// many applied writes (and the covered WAL segments truncated).
  /// 0 = only explicit CHECKPOINT frames and Drain() checkpoint.
  uint64_t checkpoint_interval = 0;
  /// Drain() deadline: how long the event loop keeps running to answer
  /// admitted work before giving up and exiting anyway.
  int drain_timeout_millis = 5000;
};

/// \brief The pcdbd serving core. Start() spins up the listener, event
/// loop and eval pool; Stop() (or the destructor) shuts everything down.
class Server {
 public:
  /// Takes the database to serve. Mutations after construction go
  /// through UpdateDatabase.
  explicit Server(AnnotatedDatabase db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the event loop and eval pool.
  /// A stopped server may be started again (the listener is rebound,
  /// so with port 0 the new port may differ); metrics and cache
  /// contents carry over across restarts.
  [[nodiscard]] Status Start();

  /// Requests shutdown, cancels in-flight queries cooperatively, and
  /// blocks until the event loop has exited. Idempotent. Deliberately
  /// does NOT checkpoint — the WAL alone must be able to reconstruct
  /// the state (which is what the crash-recovery tests exercise);
  /// graceful shutdown with a final checkpoint is Drain().
  void Stop();

  /// Async-signal-safe drain request (an atomic store plus the wake
  /// pipe's write(2)): the event loop stops accepting connections and
  /// frames, answers everything already admitted, then exits. pcdbd's
  /// SIGTERM/SIGINT handler calls exactly this.
  void RequestDrain();

  /// Blocking graceful shutdown: RequestDrain(), wait for the loop to
  /// finish answering admitted work (bounded by
  /// ServerOptions::drain_timeout_millis), stop the pools, and write a
  /// final checkpoint so the next Start() recovers without replay.
  void Drain();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return listener_.port(); }

  MetricsRegistry& metrics() { return metrics_; }
  const AnswerCache& cache() const { return cache_; }

  /// Copy-on-write database mutation: `fn` runs against a private copy
  /// of the current snapshot (built outside db_mu_ — readers are never
  /// blocked by the copy or by `fn`); on success the snapshot pointer
  /// is swapped and the cache entries the epoch diff proves stale are
  /// invalidated (whole tables for data changes and pattern
  /// retractions, single signatures for pattern additions). In-flight
  /// queries keep evaluating against the snapshot they started with
  /// (their cache entries carry the old epochs and simply become
  /// unreachable). Serialized with the INGEST/PUNCTUATE writer job on
  /// write_mu_.
  [[nodiscard]] Status UpdateDatabase(const std::function<Status(AnnotatedDatabase*)>& fn);

  /// Metrics + cache stats as one JSON object (the STATS payload).
  std::string StatsJson() const;

 private:
  struct Completion;
  struct Conn;
  struct LoopState;

  /// One admitted INGEST or PUNCTUATE, waiting for the writer job.
  struct WriteOp {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::string tenant;
    /// Resolved from ServerOptions::tenant_tiers at admission.
    uint32_t tier = 0;
    /// Admission order, for FIFO within a tier.
    uint64_t seq = 0;
    bool is_punctuate = false;
    /// A CHECKPOINT admin frame: rides the write queue (so it
    /// serializes after every previously admitted write) but carries no
    /// data; answered with CHECKPOINT_RESULT.
    bool is_checkpoint = false;
    IngestRequest ingest;        ///< Valid when !is_punctuate.
    PunctuateRequest punctuate;  ///< Valid when is_punctuate.

    /// The op's idempotence identity ((0,0) = unsequenced).
    uint64_t writer_id() const {
      return is_punctuate ? punctuate.writer_id : ingest.writer_id;
    }
    uint64_t wire_seq() const {
      return is_punctuate ? punctuate.seq : ingest.seq;
    }
  };

  void RunLoop();
  void ProcessCompletions(LoopState* state);
  void AcceptNewConnections(LoopState* state);
  void HandleReadable(LoopState* state, Conn* conn);
  void HandleFrame(LoopState* state, Conn* conn, Frame frame);
  void AdmitOrShed(LoopState* state, Conn* conn, uint64_t request_id,
                   QueryRequest request);
  /// Releases one unit of a tenant's read-quota load (admission counts
  /// in-flight + queued queries). Loop thread only.
  void DecTenantRead(LoopState* state, const std::string& tenant);
  /// ServerOptions::tenant_tiers lookup; unlisted tenants are tier 0.
  uint32_t TenantTier(const std::string& tenant) const;
  void DispatchQuery(LoopState* state, Conn* conn, uint64_t request_id,
                     QueryRequest request, uint64_t admit_micros);
  void FlushWrites(Conn* conn);
  void RunQueryJob(uint64_t conn_id, uint64_t request_id, QueryRequest request,
                   std::shared_ptr<CancellationToken> token,
                   std::shared_ptr<const AnnotatedDatabase> snapshot,
                   uint64_t admit_micros);
  void PostCompletion(Completion completion);
  std::shared_ptr<const AnnotatedDatabase> Snapshot() const
      PCDB_EXCLUDES(db_mu_);

  /// Queues a write (or sheds it onto conn->outbuf) and starts the
  /// writer job if none is running. Loop thread only.
  void EnqueueWrite(Conn* conn, WriteOp op) PCDB_EXCLUDES(writes_mu_);
  /// Drains pending_writes_ in batches until empty; one instance runs
  /// at a time (writer_active_). Runs on the eval pool.
  void RunWriterJob() PCDB_EXCLUDES(writes_mu_, write_mu_);
  /// Applies one op to the in-construction snapshot via FeedManager;
  /// fills `ack` with the op's outcome counters.
  [[nodiscard]] Status ApplyWriteOp(AnnotatedDatabase* next, WriteOp* op,
                      IngestResult* ack);
  /// Invalidates exactly the cache entries the before->after epoch diff
  /// proves stale: whole tables whose table epoch moved (data changes,
  /// retractions, drops), single signatures whose pattern-sig epoch
  /// moved under an unchanged table epoch (additions).
  void InvalidateDiff(const AnnotatedDatabase& before,
                      const AnnotatedDatabase& after);

  /// Startup recovery (first Start() with a wal_dir): load the newest
  /// checkpoint, replay the WAL tail past it, install the recovered
  /// snapshot, and open the WAL for appending (truncating any torn
  /// tail). See docs/DURABILITY.md §4.
  [[nodiscard]] Status RecoverFromDurableState() PCDB_EXCLUDES(write_mu_);
  /// Replay callback: decode one WAL record's payload and re-apply it
  /// (with the same dedup the live path uses) to the in-construction
  /// recovery snapshot.
  [[nodiscard]] Status ApplyRecoveredRecord(AnnotatedDatabase* next,
                                            const WalRecord& record)
      PCDB_REQUIRES(write_mu_);
  /// True when the op's (writer_id, seq) was already applied; loads the
  /// stored ack (re-encoded with duplicate=true) into `*ack_payload`.
  [[nodiscard]] bool IsDuplicateWrite(const WriteOp& op,
                                      std::string* ack_payload)
      PCDB_REQUIRES(write_mu_);
  /// Records the ack for a just-applied sequenced op so a retry of the
  /// same seq is served from it instead of re-applying.
  void RecordWriterAck(const WriteOp& op, const IngestResult& ack)
      PCDB_REQUIRES(write_mu_);
  /// Writes a checkpoint of the current snapshot + dedup state, then
  /// truncates the WAL segments it covers. kUnavailable without a WAL.
  [[nodiscard]] Result<CheckpointResult> CheckpointLocked()
      PCDB_REQUIRES(write_mu_) PCDB_EXCLUDES(db_mu_);
  std::string CheckpointPath() const {
    return options_.wal_dir + "/CHECKPOINT";
  }

  ServerOptions options_;
  MetricsRegistry metrics_;
  AnswerCache cache_;

  // Hot-path metric handles, resolved once in the constructor (registry
  // lookups take a lock; the metrics themselves are lock-free).
  Counter* c_requests_ = nullptr;
  Counter* c_shed_ = nullptr;
  Counter* c_cache_hits_ = nullptr;
  Counter* c_cache_misses_ = nullptr;
  Counter* c_errors_ = nullptr;
  Counter* c_cancelled_ = nullptr;
  Counter* c_timeouts_ = nullptr;
  Counter* c_connections_ = nullptr;
  Counter* c_conn_rejected_ = nullptr;
  Counter* c_conn_faults_ = nullptr;
  Counter* c_protocol_errors_ = nullptr;
  Counter* c_eval_task_faults_ = nullptr;
  Counter* c_poll_errors_ = nullptr;
  Counter* c_ingest_rows_ = nullptr;
  Counter* c_ingest_rejected_ = nullptr;
  Counter* c_punctuations_ = nullptr;
  Counter* c_patterns_retracted_ = nullptr;
  Counter* c_writes_shed_ = nullptr;
  Counter* c_queries_shed_ = nullptr;
  Counter* c_write_batches_ = nullptr;
  Counter* c_writes_deduped_ = nullptr;
  Gauge* g_connections_ = nullptr;
  Gauge* g_inflight_ = nullptr;
  Gauge* g_pending_writes_ = nullptr;
  Histogram* h_latency_ = nullptr;

  mutable Mutex db_mu_;
  std::shared_ptr<const AnnotatedDatabase> db_ PCDB_GUARDED_BY(db_mu_);

  /// Serializes snapshot *builders* (the writer job and UpdateDatabase).
  /// Held across copy + mutate; db_mu_ is taken only for the final
  /// pointer swap, so readers never wait on a writer's work.
  /// Lock order: write_mu_ before db_mu_; never the reverse. The
  /// PCDB_ACQUIRED_BEFORE annotation is the machine-checked form of
  /// that sentence: pcdb-analyze (lock-hierarchy) requires every
  /// observed nesting edge to be declared this way and keeps the
  /// declared order acyclic.
  Mutex write_mu_ PCDB_ACQUIRED_BEFORE(db_mu_);

  /// Durability state, owned by whoever holds write_mu_ (the writer job
  /// and recovery — the same serialization that orders the writes
  /// themselves). Null when running without a wal_dir.
  std::unique_ptr<WalWriter> wal_ PCDB_GUARDED_BY(write_mu_);
  /// Idempotent-retry dedup state: tenant -> writer -> last applied seq
  /// + stored ack. Persisted in every checkpoint; rebuilt from WAL
  /// records on replay.
  CheckpointWriters writers_ PCDB_GUARDED_BY(write_mu_);
  /// Applied writes since the last checkpoint, for checkpoint_interval.
  uint64_t writes_since_checkpoint_ PCDB_GUARDED_BY(write_mu_) = 0;
  /// Recovery runs once, on the first Start(): after a Stop()/Start()
  /// cycle the in-memory state is already authoritative and replaying
  /// the log again would double-apply it.
  bool recovered_ = false;

  Mutex writes_mu_;
  std::deque<WriteOp> pending_writes_ PCDB_GUARDED_BY(writes_mu_);
  /// Pending-op count per tenant, for quota shedding.
  std::map<std::string, size_t> tenant_pending_ PCDB_GUARDED_BY(writes_mu_);
  bool writer_active_ PCDB_GUARDED_BY(writes_mu_) = false;
  uint64_t write_seq_ PCDB_GUARDED_BY(writes_mu_) = 0;

  Listener listener_;
  WakePipe wake_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};

  mutable Mutex state_mu_;
  CondVar state_cv_;
  bool started_ PCDB_GUARDED_BY(state_mu_) = false;
  bool loop_done_ PCDB_GUARDED_BY(state_mu_) = false;

  Mutex completions_mu_;
  std::vector<Completion> completions_ PCDB_GUARDED_BY(completions_mu_);

  /// Declared after every member they use: destroyed first, so the loop
  /// task and eval jobs are joined while wake_/completions_ still exist.
  std::unique_ptr<ThreadPool> eval_pool_;
  std::unique_ptr<ThreadPool> loop_pool_;
};

}  // namespace pcdb

#endif  // PCDB_SERVER_SERVER_H_
