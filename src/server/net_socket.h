#ifndef PCDB_SERVER_NET_SOCKET_H_
#define PCDB_SERVER_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file
/// RAII wrappers over POSIX TCP sockets and poll(2).
///
/// Every raw socket syscall in the project lives in net_socket.{h,cc}
/// (enforced by the `raw-socket` rule of tools/pcdb_lint.py): the rest
/// of the server subsystem speaks Socket/Listener/Poll and gets
/// consistent Status error mapping, EINTR retries, and fault-injection
/// sites for free.
///
/// Failpoint sites (tools/ci.sh faults sweeps them):
///   server.accept      fires in Listener::Accept
///   server.read        fires in Socket::Recv
///   server.read.short  behavioural: while armed, Recv reads at most one
///                      byte per call (exercises every resume-from-
///                      short-read path in the frame decoder)
///   server.write       fires in Socket::Send

namespace pcdb {

/// Outcome of one non-blocking read or write.
struct IoResult {
  size_t bytes = 0;        ///< Bytes transferred (0 on EOF / would-block).
  bool would_block = false;  ///< The operation would have blocked.
  bool eof = false;          ///< Peer closed the connection (reads only).
};

/// \brief An owned TCP socket file descriptor (move-only).
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = invalid).
  explicit Socket(int fd) : fd_(fd) {}
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Toggles O_NONBLOCK.
  [[nodiscard]] Status SetNonBlocking(bool non_blocking);

  /// SO_RCVTIMEO for blocking sockets (client side); 0 disables.
  [[nodiscard]] Status SetRecvTimeoutMillis(int millis);

  /// Disables Nagle (TCP_NODELAY) — the protocol writes whole frames.
  [[nodiscard]] Status SetNoDelay(bool no_delay);

  /// Half-close: shutdown(SHUT_WR). The peer sees EOF but this end can
  /// still read — how a client signals "no more requests" while waiting
  /// for the answers it is owed.
  [[nodiscard]] Status ShutdownWrite();

  /// Reads up to `len` bytes. EINTR is retried; EAGAIN/EWOULDBLOCK is
  /// reported as would_block, a peer close as eof. A timed-out blocking
  /// read surfaces as Status kTimeout.
  [[nodiscard]] Result<IoResult> Recv(void* buf, size_t len);

  /// Writes up to `len` bytes (MSG_NOSIGNAL; a closed peer is a Status,
  /// never a SIGPIPE).
  [[nodiscard]] Result<IoResult> Send(const void* buf, size_t len);

  /// Blocking helper: writes all of `data` or fails.
  [[nodiscard]] Status SendAll(const void* data, size_t len);

  /// Blocking helper: reads exactly `len` bytes into `buf`; kTimeout on
  /// receive timeout, kUnavailable when the peer closes mid-read.
  [[nodiscard]] Status RecvExact(void* buf, size_t len);

  void Close();

 private:
  int fd_ = -1;
};

/// \brief A listening TCP socket bound to `host:port`.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds and listens; port 0 picks an ephemeral port (read it back
  /// with port()). The listener is created non-blocking: Accept reports
  /// would_block instead of waiting.
  [[nodiscard]] static Result<Listener> BindAndListen(const std::string& host,
                                        uint16_t port, int backlog = 128);

  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  uint16_t port() const { return port_; }

  /// Accepts one pending connection. `would_block` is set when none is
  /// pending; the returned socket is left in blocking mode.
  struct AcceptResult {
    Socket socket;
    bool would_block = false;
  };
  [[nodiscard]] Result<AcceptResult> Accept();

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// Connects to `host:port` (blocking). The socket is returned in
/// blocking mode with TCP_NODELAY set.
[[nodiscard]] Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// \brief One fd's interest set and readiness for Poll().
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // Outputs, overwritten by Poll():
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< POLLERR / POLLHUP / POLLNVAL.
};

/// poll(2) over `items`; blocks up to `timeout_millis` (-1 = forever).
/// Returns the number of ready items; EINTR is retried.
[[nodiscard]] Result<int> Poll(std::vector<PollItem>* items, int timeout_millis);

/// \brief A self-pipe used to wake a Poll()ing thread from another
/// thread (eval workers notify the event loop of finished queries).
class WakePipe {
 public:
  WakePipe() = default;
  WakePipe(WakePipe&&) = default;
  WakePipe& operator=(WakePipe&&) = default;

  [[nodiscard]] static Result<WakePipe> Create();

  int read_fd() const { return read_end_.fd(); }

  /// Makes the next (or current) Poll on read_fd readable. Async-signal
  /// unsafe parts avoided: a single write(2), full pipe tolerated.
  void Notify();

  /// Consumes all pending wake bytes.
  void Drain();

 private:
  Socket read_end_;   // plain fds; Socket is just an fd owner here
  Socket write_end_;
};

}  // namespace pcdb

#endif  // PCDB_SERVER_NET_SOCKET_H_
