#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <iterator>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/timer.h"
#include "obs/names.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "pattern/annotated_eval.h"
#include "pattern/feed.h"
#include "pattern/shard_route.h"
#include "sql/planner.h"

namespace pcdb {

/// Result of one query job, posted from an eval worker to the loop.
struct Server::Completion {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  /// Non-OK -> one ERROR frame; OK -> the answer frame sequence.
  Status status;
  std::shared_ptr<const EncodedAnswer> answer;
  AnswerDone done;
  /// Rendered QueryProfileToJson text; non-empty only when the request
  /// set kFlagProfile and the query succeeded. Framed verbatim as
  /// ANSWER_PROFILE, so the client receives it byte-identically.
  std::string profile_json;
  /// True for INGEST/PUNCTUATE completions: framed as one INGEST_RESULT
  /// (`write_ack`) instead of the answer sequence, and exempt from the
  /// query inflight accounting (writes never held an eval slot).
  bool is_write = false;
  /// Encoded ack payload; valid when is_write and status OK.
  std::string write_ack;
  /// Frame type `write_ack` is sent as: INGEST_RESULT for data writes,
  /// CHECKPOINT_RESULT for checkpoint admin ops.
  FrameType write_ack_type = FrameType::kIngestResult;
  /// Query completions carry the request's tenant so the loop can
  /// release its read-quota unit (LoopState::tenant_reads).
  std::string tenant;
};

/// Per-connection state. Owned exclusively by the event loop.
struct Server::Conn {
  uint64_t id = 0;
  Socket sock;
  FrameReader reader;
  /// Outbound bytes not yet written; [out_pos, size) is pending.
  std::string outbuf;
  size_t out_pos = 0;
  /// One admitted query waiting for an eval slot.
  struct QueuedQuery {
    uint64_t request_id = 0;
    QueryRequest request;
    /// Tracer-epoch time of admission, for queue-wait accounting.
    uint64_t admit_micros = 0;
  };
  /// Admitted queries waiting for an eval slot.
  std::deque<QueuedQuery> queued;
  /// Cancellation tokens of this connection's in-flight queries.
  std::map<uint64_t, std::shared_ptr<CancellationToken>> tokens;
  /// INGEST/PUNCTUATE ops admitted but not yet acked; a half-closed
  /// connection is owed these acks before it is reaped, exactly like
  /// queued/in-flight query answers.
  size_t pending_write_acks = 0;
  /// No more input will arrive or be processed; answer everything
  /// already admitted, flush the output, then close.
  bool closing = false;
  /// Stop decoding buffered input (the stream is off-protocol). Unlike
  /// plain `closing` (client EOF), buffered frames must NOT be drained.
  bool drop_input = false;
  /// Remove immediately (I/O error or injected fault).
  bool dead = false;

  bool HasPendingOutput() const { return out_pos < outbuf.size(); }
};

struct Server::LoopState {
  std::map<uint64_t, std::unique_ptr<Conn>> conns;
  /// Connections with queued queries, in admission order. May hold
  /// stale ids (connection closed, query cancelled) — skipped on pop.
  std::deque<uint64_t> admit_fifo;
  /// Queries currently on the eval pool.
  size_t inflight = 0;
  /// Admitted (in-flight + queued) queries per tenant, for
  /// ServerOptions::tenant_read_quota shedding. Absent = 0.
  std::map<std::string, size_t> tenant_reads;
  uint64_t next_conn_id = 1;
};

Server::Server(AnnotatedDatabase db, ServerOptions options)
    : options_(options),
      cache_(options.cache),
      db_(std::make_shared<AnnotatedDatabase>(std::move(db))) {
  c_requests_ = metrics_.GetCounter(kMetricRequestsTotal);
  c_shed_ = metrics_.GetCounter(kMetricShedTotal);
  c_cache_hits_ = metrics_.GetCounter(kMetricCacheHits);
  c_cache_misses_ = metrics_.GetCounter(kMetricCacheMisses);
  c_errors_ = metrics_.GetCounter(kMetricErrorsTotal);
  c_cancelled_ = metrics_.GetCounter(kMetricCancelledTotal);
  c_timeouts_ = metrics_.GetCounter(kMetricTimeoutsTotal);
  c_connections_ = metrics_.GetCounter(kMetricConnectionsTotal);
  c_conn_rejected_ = metrics_.GetCounter(kMetricConnectionsRejected);
  c_conn_faults_ = metrics_.GetCounter(kMetricConnectionFaults);
  c_protocol_errors_ = metrics_.GetCounter(kMetricProtocolErrors);
  c_eval_task_faults_ = metrics_.GetCounter(kMetricEvalTaskFaults);
  c_poll_errors_ = metrics_.GetCounter(kMetricPollErrors);
  c_ingest_rows_ = metrics_.GetCounter(kMetricIngestRowsTotal);
  c_ingest_rejected_ = metrics_.GetCounter(kMetricIngestRejectedTotal);
  c_punctuations_ = metrics_.GetCounter(kMetricPunctuationsTotal);
  c_patterns_retracted_ = metrics_.GetCounter(kMetricPatternsRetractedTotal);
  c_writes_shed_ = metrics_.GetCounter(kMetricWritesShedTotal);
  c_queries_shed_ = metrics_.GetCounter(kMetricQueriesShedTotal);
  c_write_batches_ = metrics_.GetCounter(kMetricWriteBatches);
  c_writes_deduped_ = metrics_.GetCounter(kMetricWritesDedupedTotal);
  g_connections_ = metrics_.GetGauge(kMetricConnectionsOpen);
  g_inflight_ = metrics_.GetGauge(kMetricInflight);
  g_pending_writes_ = metrics_.GetGauge(kMetricPendingWrites);
  h_latency_ = metrics_.GetHistogram(kMetricRequestLatency);
  // Resolve the engine-level counters eagerly: the first EngineMetrics()
  // call also installs the failpoint trip observer, so trips are counted
  // from the very first request.
  EngineMetrics();
}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    MutexLock lock(&state_mu_);
    if (started_) return Status::InvalidArgument("server already started");
  }
  if (!options_.wal_dir.empty() && !recovered_) {
    // Before the listener exists: no client may observe pre-recovery
    // state, and a recovery failure leaves nothing half-started.
    PCDB_RETURN_NOT_OK(RecoverFromDurableState());
    recovered_ = true;
  }
  PCDB_ASSIGN_OR_RETURN(listener_,
                        Listener::BindAndListen(options_.host, options_.port));
  PCDB_ASSIGN_OR_RETURN(wake_, WakePipe::Create());
  // Clear the previous Stop()/Drain()'s requests so a restarted loop
  // runs; the old pools (if any) already drained in Stop() and are
  // replaced below.
  stop_requested_.store(false, std::memory_order_release);
  drain_requested_.store(false, std::memory_order_release);
  // Eval pool floor of 2: a 1-thread ThreadPool runs tasks inline in the
  // submitter — the event loop — which would block frame processing for
  // the duration of a query and make mid-query CANCEL impossible.
  eval_pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(2, options_.eval_threads));
  // 2 for the same reason: the loop task must run on a worker, not
  // inline in Start().
  loop_pool_ = std::make_unique<ThreadPool>(2);
  {
    MutexLock lock(&state_mu_);
    started_ = true;
    loop_done_ = false;
  }
  loop_pool_->Submit([this] { RunLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    MutexLock lock(&state_mu_);
    if (!started_) return;
  }
  stop_requested_.store(true, std::memory_order_release);
  wake_.Notify();
  {
    MutexLock lock(&state_mu_);
    while (!loop_done_) state_cv_.Wait(lock);
  }
  if (eval_pool_ != nullptr) {
    // The loop cancelled every in-flight token on exit, so governed
    // evaluations return kCancelled at their next checkpoint.
    eval_pool_->Wait();
    Status pool_status = eval_pool_->ConsumeStatus();
    if (!pool_status.ok()) c_eval_task_faults_->Increment();
  }
  // Release the port: a stopped server must not squat on its address —
  // a successor process (or a fresh Server in the same test binary) may
  // bind the same port immediately, e.g. to recover this server's WAL.
  listener_ = Listener();
  {
    // Everything is quiescent; allow a fresh Start() (rebinds the
    // listener, possibly on a different ephemeral port).
    MutexLock lock(&state_mu_);
    started_ = false;
  }
}

void Server::RequestDrain() {
  // Called from signal handlers: everything here must stay
  // async-signal-safe — a relaxed/release atomic store and the wake
  // pipe's single write(2). No locks, no allocation, no logging.
  drain_requested_.store(true, std::memory_order_release);
  wake_.Notify();
}

void Server::Drain() {
  {
    MutexLock lock(&state_mu_);
    if (!started_) return;
  }
  RequestDrain();
  {
    // The loop exits on its own once admitted work is answered (or the
    // drain deadline passes); Stop() below then only joins the pools.
    MutexLock lock(&state_mu_);
    while (!loop_done_) state_cv_.Wait(lock);
  }
  Stop();
  {
    // Final checkpoint: every accepted write is applied and the pools
    // are quiet, so the snapshot is the complete pre-shutdown state and
    // the next Start() recovers without any replay.
    MutexLock write_lock(&write_mu_);
    if (wal_ != nullptr) {
      Result<CheckpointResult> ckpt = CheckpointLocked();
      if (!ckpt.ok()) {
        // The WAL still covers everything the checkpoint would have;
        // recovery just replays more.
        LogWarn("final drain checkpoint failed")
            .Str("status", ckpt.status().ToString());
      }
    }
  }
  drain_requested_.store(false, std::memory_order_release);
}

std::shared_ptr<const AnnotatedDatabase> Server::Snapshot() const {
  MutexLock lock(&db_mu_);
  return db_;
}

Status Server::UpdateDatabase(
    const std::function<Status(AnnotatedDatabase*)>& fn) {
  // write_mu_ serializes snapshot builders (this and the writer job),
  // so the base we copy is still current at swap time. The copy and the
  // mutation run *outside* db_mu_ — readers (Snapshot) block only for
  // the pointer swap, and in-flight queries keep their old snapshot
  // alive via shared_ptr.
  MutexLock write_lock(&write_mu_);
  std::shared_ptr<const AnnotatedDatabase> base = Snapshot();
  auto next = std::make_shared<AnnotatedDatabase>(*base);
  PCDB_RETURN_NOT_OK(fn(next.get()));
  {
    MutexLock lock(&db_mu_);
    db_ = next;
  }
  // Eagerly reclaim cache entries the epoch diff proves stale (the
  // epochs-in-key already make them unreachable; this frees the bytes).
  InvalidateDiff(*base, *next);
  return Status::OK();
}

void Server::InvalidateDiff(const AnnotatedDatabase& before,
                            const AnnotatedDatabase& after) {
  std::map<std::string, uint64_t> old_epochs;
  for (const std::string& name : before.database().TableNames()) {
    old_epochs[name] = before.database().TableEpoch(name);
  }
  for (const std::string& name : after.database().TableNames()) {
    auto it = old_epochs.find(name);
    if (it == old_epochs.end() ||
        it->second != after.database().TableEpoch(name)) {
      // New table, data mutation, or pattern retraction (SetPatterns):
      // conservative wholesale invalidation.
      cache_.InvalidateTable(name);
    } else {
      // Table epoch unchanged, so only pattern *additions* can have
      // happened; drop exactly the entries whose query mask overlaps a
      // bumped signature. Entries under incomparable masks survive —
      // the fine-grained invalidation the signature epochs exist for.
      const auto& old_sigs = before.PatternSigEpochs(name);
      for (const auto& [sig, epoch] : after.PatternSigEpochs(name)) {
        auto old_it = old_sigs.find(sig);
        if (old_it == old_sigs.end() || old_it->second != epoch) {
          cache_.InvalidateSignature(name, sig);
        }
      }
    }
    if (it != old_epochs.end()) old_epochs.erase(it);
  }
  for (const auto& [name, epoch] : old_epochs) {
    // Dropped tables: nothing can match their key anymore.
    cache_.InvalidateTable(name);
  }
}

Status Server::RecoverFromDurableState() {
  // write_mu_ for writers_/wal_: the listener does not exist yet, so
  // there is no contention — the lock is for the annotations' benefit
  // and for safety if recovery ever moves later in the lifecycle.
  MutexLock write_lock(&write_mu_);
  PCDB_ASSIGN_OR_RETURN(std::optional<CheckpointState> ckpt,
                        LoadCheckpoint(CheckpointPath()));
  uint64_t after_lsn = 0;
  std::shared_ptr<AnnotatedDatabase> next;
  if (ckpt.has_value()) {
    // The checkpoint is the full pre-crash state (it serialized the
    // constructor-seeded tables along with everything else), so it
    // replaces the seed snapshot outright.
    after_lsn = ckpt->last_lsn;
    writers_ = std::move(ckpt->writers);
    next = std::make_shared<AnnotatedDatabase>(std::move(ckpt->db));
  } else {
    // No checkpoint yet: replay the whole log onto the seeded database
    // (WAL records reference tables the seed created).
    next = std::make_shared<AnnotatedDatabase>(*Snapshot());
  }
  PCDB_ASSIGN_OR_RETURN(
      WalReplayStats stats,
      ReplayWal(
          options_.wal_dir, after_lsn,
          [this, &next](const WalRecord& record)
              PCDB_NO_THREAD_SAFETY_ANALYSIS {
                // The analysis cannot see through std::function that
                // write_mu_ is held for the whole replay.
                return ApplyRecoveredRecord(next.get(), record);
              },
          &metrics_));
  if (stats.torn_tail) {
    LogWarn("wal replay stopped at a torn/corrupt tail")
        .Str("detail", stats.tail_detail)
        .Unum("replayed", stats.records_replayed);
  }
  LogInfo("durable state recovered")
      .Str("wal_dir", options_.wal_dir)
      .Unum("checkpoint_lsn", after_lsn)
      .Unum("replayed", stats.records_replayed)
      .Unum("skipped", stats.records_skipped);
  {
    MutexLock lock(&db_mu_);
    db_ = next;
  }
  WalWriterOptions wal_options;
  wal_options.metrics = &metrics_;
  // Guards against a log whose tail segments were truncated away while
  // the checkpoint references higher LSNs.
  wal_options.min_next_lsn = after_lsn + 1;
  PCDB_ASSIGN_OR_RETURN(wal_,
                        WalWriter::Open(options_.wal_dir, wal_options));
  return Status::OK();
}

Status Server::ApplyRecoveredRecord(AnnotatedDatabase* next,
                                    const WalRecord& record) {
  WriteOp op;
  op.tenant = record.tenant;
  if (record.type == WalRecordType::kPunctuate) {
    op.is_punctuate = true;
    PCDB_ASSIGN_OR_RETURN(op.punctuate,
                          DecodePunctuatePayload(record.payload));
  } else {
    PCDB_ASSIGN_OR_RETURN(op.ingest, DecodeIngestPayload(record.payload));
  }
  // Replay dedups exactly like the live path: a duplicate that slipped
  // into the log (retry landing in the same batch as the original) was
  // never applied, so it must not apply now either.
  std::string dup_ack;
  if (IsDuplicateWrite(op, &dup_ack)) return Status::OK();
  IngestResult ack;
  Status applied;
  try {
    applied = ApplyWriteOp(next, &op, &ack);
  } catch (const std::exception& e) {
    applied = Status::Internal(std::string("recovery apply exception: ") +
                               e.what());
  } catch (...) {
    applied = Status::Internal("recovery apply: unknown exception");
  }
  if (!applied.ok()) {
    // The op was accepted (logged) before the crash and its outcome —
    // including a partial apply + error — was already determined and
    // reported then. Re-applying is deterministic, so this is the same
    // outcome, not a recovery failure; stopping here would discard
    // every acked write after it.
    LogWarn("recovered write re-applied with an error")
        .Unum("lsn", record.lsn)
        .Str("status", applied.ToString());
  }
  RecordWriterAck(op, ack);
  return Status::OK();
}

bool Server::IsDuplicateWrite(const WriteOp& op, std::string* ack_payload) {
  const uint64_t writer_id = op.writer_id();
  const uint64_t seq = op.wire_seq();
  if (writer_id == 0 || seq == 0) return false;
  auto tenant_it = writers_.find(op.tenant);
  if (tenant_it == writers_.end()) return false;
  auto writer_it = tenant_it->second.find(writer_id);
  if (writer_it == tenant_it->second.end()) return false;
  const CheckpointWriterState& state = writer_it->second;
  if (seq > state.last_seq) return false;
  IngestResult ack;
  if (seq == state.last_seq && !state.ack.empty()) {
    // Re-serve the original ack's counters so the retry learns what its
    // write actually did.
    Result<IngestResult> stored = DecodeIngestResultPayload(state.ack);
    if (stored.ok()) ack = *stored;
  }
  // seq < last_seq: an older retry overtaken by newer writes — the
  // original counters are gone, but "already applied" still holds.
  ack.seq = seq;
  ack.duplicate = true;
  *ack_payload = EncodeIngestResultPayload(ack);
  return true;
}

void Server::RecordWriterAck(const WriteOp& op, const IngestResult& ack) {
  const uint64_t writer_id = op.writer_id();
  const uint64_t seq = op.wire_seq();
  if (writer_id == 0 || seq == 0) return;
  IngestResult stored = ack;
  stored.seq = seq;
  stored.duplicate = false;
  CheckpointWriterState state;
  state.last_seq = seq;
  state.ack = EncodeIngestResultPayload(stored);
  writers_[op.tenant][writer_id] = std::move(state);
}

Result<CheckpointResult> Server::CheckpointLocked() {
  if (wal_ == nullptr) {
    return Status::Unavailable(
        "server is running without a WAL (no wal_dir); nothing to "
        "checkpoint");
  }
  std::shared_ptr<const AnnotatedDatabase> snapshot = Snapshot();
  // Everything up to the last assigned LSN is applied in `snapshot`:
  // checkpoints run on the writer path, serialized after the batch that
  // carried them.
  const uint64_t last_lsn = wal_->next_lsn() - 1;
  PCDB_RETURN_NOT_OK(SaveCheckpoint(CheckpointPath(), *snapshot, last_lsn,
                                    writers_, &metrics_));
  CheckpointResult result;
  result.lsn = last_lsn;
  PCDB_ASSIGN_OR_RETURN(result.wal_segments_removed,
                        wal_->TruncateThrough(last_lsn));
  writes_since_checkpoint_ = 0;
  return result;
}

std::string Server::StatsJson() const {
  const AnswerCache::Stats cs = cache_.GetStats();
  std::string json = metrics_.ToJson();
  std::string cache_json =
      ",\"cache\":{\"hits\":" + std::to_string(cs.hits) +
      ",\"misses\":" + std::to_string(cs.misses) +
      ",\"insertions\":" + std::to_string(cs.insertions) +
      ",\"evictions\":" + std::to_string(cs.evictions) +
      ",\"invalidations\":" + std::to_string(cs.invalidations) +
      ",\"sig_invalidations\":" + std::to_string(cs.sig_invalidations) +
      ",\"entries\":" + std::to_string(cs.entries) +
      ",\"bytes\":" + std::to_string(cs.bytes) + "}";
  // Engine-level counters (minimization, degradation, failpoint trips)
  // live in the process-wide registry, shared across Server instances.
  cache_json += ",\"engine\":" + GlobalMetrics().ToJson();
  json.insert(json.size() - 1, cache_json);
  return json;
}

void Server::RunLoop() {
  LoopState state;
  size_t consecutive_poll_errors = 0;
  int poll_backoff_millis = 1;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_start;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (!draining && drain_requested_.load(std::memory_order_acquire)) {
      // Graceful drain: stop reading new requests (mark every conn
      // closing — the reap logic already waits for queued/in-flight
      // answers to flush), stop accepting, and exit once all owed work
      // is answered or the deadline passes.
      draining = true;
      drain_start = std::chrono::steady_clock::now();
      LogInfo("drain requested; refusing new work")
          .Unum("open_connections", state.conns.size());
      for (auto& [id, conn] : state.conns) conn->closing = true;
    }
    std::vector<PollItem> items;
    std::vector<uint64_t> item_conn;  // parallel to items; 0 = not a conn
    items.push_back(PollItem{wake_.read_fd(), true, false});
    item_conn.push_back(0);
    // The listener is always polled — at the connection cap, surplus
    // accepts are rejected (closed) rather than left in the backlog.
    // While draining it is parked (not polled readable), so pending
    // connections stay in the backlog and are never read.
    const size_t listener_index = items.size();
    items.push_back(PollItem{listener_.fd(), !draining, false});
    item_conn.push_back(0);
    for (const auto& [id, conn] : state.conns) {
      items.push_back(PollItem{conn->sock.fd(), !conn->closing,
                               conn->HasPendingOutput()});
      item_conn.push_back(id);
    }

    Result<int> poll_result = Poll(&items, options_.poll_millis);
    if (!poll_result.ok()) {
      // EINTR is retried inside Poll(); reaching here means a real
      // failure (EBADF, ENOMEM, injected fault). A bare `continue`
      // would spin this core at 100% forever on a persistent error —
      // back off exponentially (bounded), and give up after the
      // configured streak so a wedged loop becomes an observable
      // stopped server rather than a silent busy-loop.
      c_poll_errors_->Increment();
      ++consecutive_poll_errors;
      LogWarn("event loop poll failed")
          .Str("status", poll_result.status().ToString())
          .Unum("consecutive", consecutive_poll_errors)
          .Num("backoff_millis", poll_backoff_millis);
      if (consecutive_poll_errors >= options_.max_poll_errors) {
        LogError("event loop stopping after persistent poll failures")
            .Unum("consecutive", consecutive_poll_errors);
        break;
      }
      // pcdb-analyze: allow(blocking-in-loop): bounded poll-error backoff; the loop is already degraded and sleeping briefly beats spinning on a failing poll fd
      std::this_thread::sleep_for(
          std::chrono::milliseconds(poll_backoff_millis));
      poll_backoff_millis = std::min(poll_backoff_millis * 2, 100);
      continue;
    }
    consecutive_poll_errors = 0;
    poll_backoff_millis = 1;

    if (items[0].readable) wake_.Drain();
    ProcessCompletions(&state);
    // Re-arm the eval pool if an injected dispatch fault tripped its
    // first-error latch; otherwise it would skip every queued job.
    Status pool_status = eval_pool_->ConsumeStatus();
    if (!pool_status.ok()) c_eval_task_faults_->Increment();

    if (items[listener_index].readable) {
      AcceptNewConnections(&state);
    }

    for (size_t i = 0; i < items.size(); ++i) {
      if (item_conn[i] == 0) continue;
      auto it = state.conns.find(item_conn[i]);
      if (it == state.conns.end()) continue;
      Conn* conn = it->second.get();
      if (items[i].error) {
        conn->dead = true;
        continue;
      }
      if (items[i].readable && !conn->dead) HandleReadable(&state, conn);
      if (items[i].writable && !conn->dead) FlushWrites(conn);
    }

    // Reap connections: dead ones now; closing ones only once every
    // admitted query has been answered (no in-flight tokens, nothing
    // queued) AND the answers are flushed — the "flush what we owe"
    // contract for clients that half-close and wait for their answers.
    for (auto it = state.conns.begin(); it != state.conns.end();) {
      Conn* conn = it->second.get();
      const bool drained = conn->closing && !conn->HasPendingOutput() &&
                           conn->tokens.empty() && conn->queued.empty() &&
                           conn->pending_write_acks == 0;
      if (conn->dead || drained) {
        // In-flight queries of a dead connection are orphaned: cancel
        // so the workers stop early; their completions are dropped when
        // the conn id no longer resolves. (Drained conns have none.)
        // Queued queries die with the connection and never post a
        // completion, so release their read-quota units here (in-flight
        // ones release theirs when the completion arrives).
        for (auto& [rid, token] : conn->tokens) token->Cancel();
        for (const Conn::QueuedQuery& q : conn->queued) {
          DecTenantRead(&state, q.request.tenant);
        }
        it = state.conns.erase(it);
        g_connections_->Add(-1);
      } else {
        ++it;
      }
    }

    if (draining) {
      bool writes_idle;
      {
        MutexLock lock(&writes_mu_);
        writes_idle = pending_writes_.empty() && !writer_active_;
      }
      const bool all_answered =
          state.conns.empty() && writes_idle && state.inflight == 0;
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - drain_start)
              .count();
      if (all_answered || elapsed >= options_.drain_timeout_millis) {
        if (!all_answered) {
          LogWarn("drain deadline reached with work outstanding")
              .Unum("open_connections", state.conns.size())
              .Unum("inflight", static_cast<uint64_t>(state.inflight));
        }
        break;
      }
    }
  }

  // Shutdown: cancel everything in flight, then hand the connections'
  // sockets back to the kernel (destructors close them).
  for (auto& [id, conn] : state.conns) {
    for (auto& [rid, token] : conn->tokens) token->Cancel();
  }
  {
    MutexLock lock(&state_mu_);
    loop_done_ = true;
  }
  state_cv_.NotifyAll();
}

void Server::AcceptNewConnections(LoopState* state) {
  PCDB_TRACE_SPAN(span, kSpanServerAccept);
  // The try/catch confines an injected accept fault (throw action on
  // server.accept) to this accept round: the listener stays up.
  try {
    for (;;) {
      Result<Listener::AcceptResult> accepted = listener_.Accept();
      if (!accepted.ok()) {
        c_conn_faults_->Increment();
        return;
      }
      if (accepted->would_block) return;
      if (state->conns.size() >= options_.max_connections) {
        // At the cap: reject by immediate close (the Socket destructor)
        // so the client sees EOF instead of hanging in the backlog.
        c_conn_rejected_->Increment();
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->id = state->next_conn_id++;
      conn->sock = std::move(accepted->socket);
      if (!conn->sock.SetNonBlocking(true).ok()) continue;
      c_connections_->Increment();
      g_connections_->Add(1);
      state->conns.emplace(conn->id, std::move(conn));
    }
  } catch (...) {
    c_conn_faults_->Increment();
  }
}

void Server::HandleReadable(LoopState* state, Conn* conn) {
  // One guard per connection: any fault on the read/decode/handle path
  // (I/O error, injected throw) kills only this connection.
  try {
    char buf[16384];
    for (;;) {
      Result<IoResult> recv_result = conn->sock.Recv(buf, sizeof(buf));
      if (!recv_result.ok()) {
        c_conn_faults_->Increment();
        conn->dead = true;
        return;
      }
      if (recv_result->would_block) break;
      if (recv_result->eof) {
        // Client finished sending; flush what we owe, then close.
        conn->closing = true;
        break;
      }
      conn->reader.Feed(buf, recv_result->bytes);
      if (recv_result->bytes < sizeof(buf)) break;
    }
    for (;;) {
      Frame frame;
      Result<bool> decoded = conn->reader.Next(&frame);
      if (!decoded.ok()) {
        // Malformed framing: the stream is unrecoverable. Report once,
        // flush, close — siblings and the listener are untouched.
        c_protocol_errors_->Increment();
        AppendFrame(&conn->outbuf, FrameType::kError, 0,
                    EncodeErrorPayload(decoded.status()));
        conn->closing = true;
        conn->drop_input = true;
        break;
      }
      if (!*decoded) break;
      HandleFrame(state, conn, std::move(frame));
      // A client EOF (`closing` alone) does not stop the drain: frames
      // pipelined before the half-close still get answered.
      if (conn->dead || conn->drop_input) break;
    }
    FlushWrites(conn);
  } catch (...) {
    c_conn_faults_->Increment();
    conn->dead = true;
  }
}

void Server::HandleFrame(LoopState* state, Conn* conn, Frame frame) {
  PCDB_TRACE_SPAN(span, kSpanServerFrame);
  switch (frame.type) {
    case FrameType::kPing:
      AppendFrame(&conn->outbuf, FrameType::kPong, frame.request_id, "");
      return;
    case FrameType::kStats:
      AppendFrame(&conn->outbuf, FrameType::kStatsResult, frame.request_id,
                  StatsJson());
      return;
    case FrameType::kCancel: {
      Result<uint64_t> target = DecodeCancelPayload(frame.payload);
      if (!target.ok()) {
        c_protocol_errors_->Increment();
        AppendFrame(&conn->outbuf, FrameType::kError, frame.request_id,
                    EncodeErrorPayload(target.status()));
        return;
      }
      // Still waiting for an eval slot? Answer kCancelled right away.
      for (auto it = conn->queued.begin(); it != conn->queued.end(); ++it) {
        if (it->request_id == *target) {
          DecTenantRead(state, it->request.tenant);
          conn->queued.erase(it);
          c_cancelled_->Increment();
          AppendFrame(&conn->outbuf, FrameType::kError, *target,
                      EncodeErrorPayload(
                          Status::Cancelled("execution cancelled by caller")));
          return;
        }
      }
      // In flight? Flip the token; the governed evaluator answers with
      // kCancelled through the normal completion path. Unknown ids
      // (already answered, never sent) are a silent no-op per protocol.
      auto it = conn->tokens.find(*target);
      if (it != conn->tokens.end()) it->second->Cancel();
      return;
    }
    case FrameType::kQuery: {
      Result<QueryRequest> request = DecodeQueryPayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        AppendFrame(&conn->outbuf, FrameType::kError, frame.request_id,
                    EncodeErrorPayload(request.status()));
        return;
      }
      AdmitOrShed(state, conn, frame.request_id, std::move(*request));
      return;
    }
    case FrameType::kIngest: {
      Result<IngestRequest> request = DecodeIngestPayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        AppendFrame(&conn->outbuf, FrameType::kError, frame.request_id,
                    EncodeErrorPayload(request.status()));
        return;
      }
      WriteOp op;
      op.conn_id = conn->id;
      op.request_id = frame.request_id;
      op.tenant = request->tenant;
      op.ingest = std::move(*request);
      EnqueueWrite(conn, std::move(op));
      return;
    }
    case FrameType::kPunctuate: {
      Result<PunctuateRequest> request =
          DecodePunctuatePayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        AppendFrame(&conn->outbuf, FrameType::kError, frame.request_id,
                    EncodeErrorPayload(request.status()));
        return;
      }
      WriteOp op;
      op.conn_id = conn->id;
      op.request_id = frame.request_id;
      op.tenant = request->tenant;
      op.is_punctuate = true;
      op.punctuate = std::move(*request);
      EnqueueWrite(conn, std::move(op));
      return;
    }
    case FrameType::kCheckpoint: {
      // Admin frame: rides the write queue so it serializes after every
      // previously accepted write, but is never WAL-logged itself.
      WriteOp op;
      op.conn_id = conn->id;
      op.request_id = frame.request_id;
      op.is_checkpoint = true;
      EnqueueWrite(conn, std::move(op));
      return;
    }
    case FrameType::kShardInfo: {
      // Shard handshake: this server's placement plus a per-table epoch
      // snapshot. The coordinator uses it to verify its partition map
      // against what each shard believes; the dist CI stage uses the
      // epochs to assert post-recovery convergence.
      ShardInfo info;
      info.shard_id = options_.shard_id;
      info.num_shards = std::max<uint32_t>(1, options_.num_shards);
      std::shared_ptr<const AnnotatedDatabase> snapshot = Snapshot();
      for (const std::string& t : snapshot->database().TableNames()) {
        ShardTableInfo table_info;
        table_info.table = t;
        table_info.hashed = options_.hashed_tables.count(t) > 0;
        table_info.epoch = snapshot->database().TableEpoch(t);
        info.tables.push_back(std::move(table_info));
      }
      AppendFrame(&conn->outbuf, FrameType::kShardInfoResult,
                  frame.request_id, EncodeShardInfoPayload(info));
      return;
    }
    default:
      // A client sending server-side frame types is off-protocol.
      c_protocol_errors_->Increment();
      AppendFrame(&conn->outbuf, FrameType::kError, frame.request_id,
                  EncodeErrorPayload(Status::InvalidArgument(
                      "unexpected frame type from client")));
      conn->closing = true;
      conn->drop_input = true;
      return;
  }
}

void Server::AdmitOrShed(LoopState* state, Conn* conn, uint64_t request_id,
                         QueryRequest request) {
  c_requests_->Increment();
  if (options_.tenant_read_quota > 0) {
    size_t& load = state->tenant_reads[request.tenant];
    if (load >= options_.tenant_read_quota) {
      // Read-side quota shed, the mirror of the write path: one tenant
      // flooding queries is shed at its quota while other tenants'
      // queries (and all writes) proceed.
      c_shed_->Increment();
      c_queries_shed_->Increment();
      // Per-tenant breakdown only for configured tenants: the name
      // comes off the wire, and a client cycling random tenant strings
      // must not grow the registry (and the /stats payload) without
      // bound. Unknown tenants aggregate under ".other".
      const bool known_tenant =
          options_.tenant_tiers.count(request.tenant) > 0;
      metrics_
          .GetCounter(std::string(kMetricQueriesShedTotal) + "." +
                      (known_tenant ? request.tenant : "other"))
          ->Increment();
      AppendFrame(&conn->outbuf, FrameType::kError, request_id,
                  EncodeErrorPayload(Status::Unavailable(
                      "read quota exhausted for tenant '" + request.tenant +
                      "'")));
      return;
    }
    ++load;
  }
  const uint64_t admit_micros = Tracer::Global().NowMicros();
  if (state->inflight < options_.max_inflight) {
    DispatchQuery(state, conn, request_id, std::move(request), admit_micros);
    return;
  }
  if (conn->queued.size() < options_.max_queued_per_connection) {
    conn->queued.push_back(
        Conn::QueuedQuery{request_id, std::move(request), admit_micros});
    state->admit_fifo.push_back(conn->id);
    return;
  }
  // Load shed: an explicit retryable error, never a silent drop. The
  // query never became admitted load, so give its quota unit back.
  DecTenantRead(state, request.tenant);
  c_shed_->Increment();
  AppendFrame(&conn->outbuf, FrameType::kError, request_id,
              EncodeErrorPayload(Status::Unavailable(
                  "server overloaded: in-flight and per-connection queue "
                  "budgets are exhausted")));
}

void Server::DecTenantRead(LoopState* state, const std::string& tenant) {
  if (options_.tenant_read_quota == 0) return;
  auto it = state->tenant_reads.find(tenant);
  if (it != state->tenant_reads.end() && --(it->second) == 0) {
    state->tenant_reads.erase(it);
  }
}

uint32_t Server::TenantTier(const std::string& tenant) const {
  auto it = options_.tenant_tiers.find(tenant);
  return it != options_.tenant_tiers.end() ? it->second : 0;
}

void Server::EnqueueWrite(Conn* conn, WriteOp op) {
  c_requests_->Increment();
  bool start_writer = false;
  Status shed;
  {
    MutexLock lock(&writes_mu_);
    if (pending_writes_.size() >= options_.max_pending_writes) {
      shed = Status::Unavailable(
          "write queue full: " + std::to_string(pending_writes_.size()) +
          " pending writes");
    } else if (options_.tenant_write_quota > 0 &&
               tenant_pending_[op.tenant] >= options_.tenant_write_quota) {
      shed = Status::Unavailable("write quota exhausted for tenant '" +
                                 op.tenant + "'");
    } else {
      op.seq = ++write_seq_;
      op.tier = TenantTier(op.tenant);
      ++tenant_pending_[op.tenant];
      pending_writes_.push_back(std::move(op));
      g_pending_writes_->Set(static_cast<int64_t>(pending_writes_.size()));
      if (!writer_active_) {
        writer_active_ = true;
        start_writer = true;
      }
      ++conn->pending_write_acks;
    }
  }
  if (!shed.ok()) {
    // Load shed, like queries: an explicit retryable error, never a
    // silent drop — and per tenant, so one flooding feed cannot crowd
    // out its neighbours (or queries, which never queue here at all).
    c_writes_shed_->Increment();
    AppendFrame(&conn->outbuf, FrameType::kError, op.request_id,
                EncodeErrorPayload(shed));
    return;
  }
  if (start_writer) {
    eval_pool_->Submit([this] { RunWriterJob(); });
  }
}

void Server::RunWriterJob() {
  // Exactly one writer job runs at a time (writer_active_); it drains
  // the pending queue in batches, building each next snapshot outside
  // db_mu_ so readers are never blocked by write work.
  try {
    for (;;) {
      std::vector<WriteOp> batch;
      {
        MutexLock lock(&writes_mu_);
        if (pending_writes_.empty()) {
          writer_active_ = false;
          g_pending_writes_->Set(0);
          return;
        }
        batch.assign(std::make_move_iterator(pending_writes_.begin()),
                     std::make_move_iterator(pending_writes_.end()));
        pending_writes_.clear();
        g_pending_writes_->Set(0);
        for (const WriteOp& op : batch) {
          auto it = tenant_pending_.find(op.tenant);
          if (it != tenant_pending_.end() && --(it->second) == 0) {
            tenant_pending_.erase(it);
          }
        }
      }
      // Highest tenant tier first; stable = FIFO (seq order) within a
      // tier.
      std::stable_sort(batch.begin(), batch.end(),
                       [](const WriteOp& a, const WriteOp& b) {
                         return a.tier > b.tier;
                       });
      c_write_batches_->Increment();
      PCDB_TRACE_SPAN(batch_span, kSpanServerWriteBatch);
      batch_span.Arg("ops", batch.size());

      MutexLock write_lock(&write_mu_);
      std::vector<Completion> comps;
      comps.reserve(batch.size());
      // Classify: checkpoint admin ops (never WAL-logged), duplicates
      // of already-applied writes (answered from the recorded ack
      // without re-logging or re-applying), and pending data ops.
      std::vector<WriteOp*> checkpoints;
      std::vector<WriteOp*> pending;
      for (WriteOp& op : batch) {
        if (op.is_checkpoint) {
          checkpoints.push_back(&op);
          continue;
        }
        std::string dup_ack;
        if (IsDuplicateWrite(op, &dup_ack)) {
          c_writes_deduped_->Increment();
          Completion comp;
          comp.conn_id = op.conn_id;
          comp.request_id = op.request_id;
          comp.is_write = true;
          comp.write_ack = std::move(dup_ack);
          comps.push_back(std::move(comp));
          continue;
        }
        pending.push_back(&op);
      }

      // Group commit: the whole batch becomes one WAL segment write and
      // one fsync, before anything applies — an OK ack implies the
      // write survives a crash.
      if (wal_ != nullptr && !pending.empty()) {
        std::vector<WalRecord> records;
        records.reserve(pending.size());
        for (WriteOp* op : pending) {
          WalRecord record;
          record.type = op->is_punctuate ? WalRecordType::kPunctuate
                                         : WalRecordType::kIngest;
          record.tenant = op->tenant;
          record.writer_id = op->writer_id();
          record.seq = op->wire_seq();
          record.payload = op->is_punctuate
                               ? EncodePunctuatePayload(op->punctuate)
                               : EncodeIngestPayload(op->ingest);
          records.push_back(std::move(record));
        }
        Status logged = wal_->AppendBatch(&records);
        if (!logged.ok()) {
          // Nothing from this batch is durable: fail every pending op
          // (acking would promise durability we don't have) and every
          // checkpoint op (truncating a log we could not extend would
          // be exactly backwards). Duplicates already classified keep
          // their success ack — their writes were durable long ago.
          for (const WriteOp* op : pending) {
            Completion comp;
            comp.conn_id = op->conn_id;
            comp.request_id = op->request_id;
            comp.is_write = true;
            comp.status = logged;
            c_errors_->Increment();
            comps.push_back(std::move(comp));
          }
          for (const WriteOp* op : checkpoints) {
            Completion comp;
            comp.conn_id = op->conn_id;
            comp.request_id = op->request_id;
            comp.is_write = true;
            comp.status = logged;
            c_errors_->Increment();
            comps.push_back(std::move(comp));
          }
          for (Completion& comp : comps) PostCompletion(std::move(comp));
          continue;
        }
      }

      if (!pending.empty()) {
        std::shared_ptr<const AnnotatedDatabase> base = Snapshot();
        // The copy-on-write copy happens here, outside db_mu_: readers
        // keep taking `base` while we build its successor.
        auto next = std::make_shared<AnnotatedDatabase>(*base);
        for (WriteOp* op_ptr : pending) {
          WriteOp& op = *op_ptr;
          Completion comp;
          comp.conn_id = op.conn_id;
          comp.request_id = op.request_id;
          comp.is_write = true;
          // Second dedup check: a retry batched together with its
          // original slipped past the pre-filter (last_seq was stale at
          // classification) and is now in the WAL — replay performs
          // this same check, so it never double-applies either.
          std::string dup_ack;
          if (IsDuplicateWrite(op, &dup_ack)) {
            c_writes_deduped_->Increment();
            comp.write_ack = std::move(dup_ack);
            comps.push_back(std::move(comp));
            continue;
          }
          IngestResult ack;
          try {
            comp.status = ApplyWriteOp(next.get(), &op, &ack);
          } catch (const std::exception& e) {
            comp.status = Status::Internal(
                std::string("write worker exception: ") + e.what());
          } catch (...) {
            comp.status = Status::Internal("write worker: unknown exception");
          }
          ack.seq = op.wire_seq();
          if (comp.status.ok()) {
            comp.write_ack = EncodeIngestResultPayload(ack);
          } else {
            c_errors_->Increment();
          }
          c_ingest_rows_->Increment(ack.rows_ingested);
          c_ingest_rejected_->Increment(ack.rows_rejected);
          c_punctuations_->Increment(ack.punctuations);
          c_patterns_retracted_->Increment(ack.patterns_retracted);
          // Recorded even when the apply errored: the op is durably
          // logged and replay is deterministic, so a retry must be
          // served "already applied" rather than re-applying a prefix.
          RecordWriterAck(op, ack);
          comps.push_back(std::move(comp));
        }
        {
          MutexLock lock(&db_mu_);
          db_ = next;
        }
        InvalidateDiff(*base, *next);
        writes_since_checkpoint_ += pending.size();
      }

      // Checkpoints run after the batch's data ops applied and the
      // snapshot swapped, so the checkpoint includes this batch.
      const bool auto_checkpoint =
          wal_ != nullptr && options_.checkpoint_interval > 0 &&
          writes_since_checkpoint_ >= options_.checkpoint_interval;
      if (!checkpoints.empty() || auto_checkpoint) {
        Result<CheckpointResult> ckpt = CheckpointLocked();
        if (!ckpt.ok() && checkpoints.empty()) {
          LogWarn("automatic checkpoint failed")
              .Str("status", ckpt.status().ToString());
        }
        for (const WriteOp* op : checkpoints) {
          Completion comp;
          comp.conn_id = op->conn_id;
          comp.request_id = op->request_id;
          comp.is_write = true;
          if (ckpt.ok()) {
            comp.write_ack = EncodeCheckpointResultPayload(*ckpt);
            comp.write_ack_type = FrameType::kCheckpointResult;
          } else {
            comp.status = ckpt.status();
            c_errors_->Increment();
          }
          comps.push_back(std::move(comp));
        }
      }
      for (Completion& comp : comps) PostCompletion(std::move(comp));
    }
  } catch (...) {
    // Defensive: ApplyWriteOp faults are confined per op above; this
    // catches infrastructure failures (allocation during the copy,
    // etc.). Clear writer_active_ so the next enqueue restarts a
    // writer; ops already popped are lost and their clients time out.
    c_eval_task_faults_->Increment();
    MutexLock lock(&writes_mu_);
    writer_active_ = false;
  }
}

Status Server::ApplyWriteOp(AnnotatedDatabase* next, WriteOp* op,
                            IngestResult* ack) {
  // Adopt the writer's trace context (if the frame carried one) so this
  // shard's ingest span parents under the coordinator's dist.write span
  // in a merged fleet trace.
  const uint64_t op_trace_id =
      op->is_punctuate ? op->punctuate.trace_id : op->ingest.trace_id;
  const uint64_t op_parent_span_id = op->is_punctuate
                                         ? op->punctuate.parent_span_id
                                         : op->ingest.parent_span_id;
  TraceContextScope trace_scope(TraceContext{op_trace_id, op_parent_span_id});
  PCDB_TRACE_SPAN(span, kSpanServerIngest);
  span.Arg("punctuate", op->is_punctuate ? 1 : 0);
  PCDB_FAILPOINT("server.ingest");
  // A fresh FeedManager per op: its stats are exactly this op's delta,
  // and the policy is the op's own.
  FeedManager feed(next,
                   !op->is_punctuate &&
                           op->ingest.policy ==
                               IngestRequest::kPolicyRetractPatterns
                       ? FeedViolationPolicy::kRetractPatterns
                       : FeedViolationPolicy::kRejectRecord);
  Status status;
  if (op->is_punctuate) {
    const bool hashed = options_.num_shards > 1 &&
                        options_.hashed_tables.count(op->punctuate.table) > 0;
    for (const std::vector<std::string>& fields : op->punctuate.patterns) {
      if (hashed) {
        // Statements over a hashed table are partitioned by constant
        // signature: only the owning shard stores this pattern. Parse
        // failures fall through to Punctuate so the error is the same
        // one a non-sharded server would report.
        Result<const Table*> stored =
            next->database().GetTable(op->punctuate.table);
        if (stored.ok()) {
          Result<Pattern> p = Pattern::Parse(fields, (*stored)->schema());
          if (p.ok() && ShardForPattern(*p, options_.num_shards) !=
                            options_.shard_id) {
            continue;
          }
        }
      }
      status = feed.Punctuate(op->punctuate.table, fields);
      if (!status.ok()) break;
    }
  } else {
    const bool hashed = options_.num_shards > 1 &&
                        options_.hashed_tables.count(op->ingest.table) > 0;
    size_t reject_policy_skips = 0;
    for (Tuple& row : op->ingest.rows) {
      if (hashed &&
          ShardForRow(row, options_.num_shards) != options_.shard_id) {
        // Broadcast ingest into a hashed table, non-owner shard: the
        // row is stored on its hash owner, but any completeness promise
        // it violates lives wherever its *signature* hashes — possibly
        // here. Under kPolicyRetractPatterns, retract locally without
        // storing — that is what keeps cross-shard retraction exact.
        // Under kPolicyRejectRecord this shard can do nothing sound:
        // the owner decides accept/reject from its local patterns
        // only, so a promise held here may survive a row that violates
        // it. The coordinator refuses that combination outright
        // (docs/DISTRIBUTED.md §5); a writer driving shards directly
        // gets one loud warning per op instead.
        if (op->ingest.policy == IngestRequest::kPolicyRetractPatterns) {
          Status retract = feed.RetractViolated(op->ingest.table, row);
          if (!retract.ok()) {
            status = std::move(retract);
            break;
          }
        } else {
          ++reject_policy_skips;
        }
        continue;
      }
      const size_t rejected_before = feed.stats().records_rejected;
      Status row_status = feed.Ingest(op->ingest.table, std::move(row));
      if (!row_status.ok() &&
          feed.stats().records_rejected == rejected_before) {
        // A real error (unknown table, arity/type mismatch), not a
        // policy rejection: stop here. Rows already applied stay
        // applied; the error tells the client where the batch stopped.
        status = std::move(row_status);
        break;
      }
      // Policy rejections are part of the contract, reported through
      // the ack counters, and do not fail the op.
    }
    if (reject_policy_skips > 0) {
      LogWarn(
          "reject-policy ingest into a hashed table skipped non-owned "
          "rows: promises this shard holds were not checked against "
          "them; the fleet's completeness verdict is owner-local "
          "(docs/DISTRIBUTED.md §5) — use the retract policy")
          .Str("table", op->ingest.table)
          .Unum("rows_skipped", reject_policy_skips)
          .Unum("shard_id", options_.shard_id);
    }
  }
  const FeedStats totals = feed.stats();
  ack->rows_ingested = totals.records_ingested;
  ack->rows_rejected = totals.records_rejected;
  ack->punctuations = totals.punctuations;
  ack->patterns_retracted = totals.patterns_retracted;
  ack->violations = totals.violations;
  return status;
}

void Server::DispatchQuery(LoopState* state, Conn* conn, uint64_t request_id,
                           QueryRequest request, uint64_t admit_micros) {
  auto token = std::make_shared<CancellationToken>();
  conn->tokens[request_id] = token;
  ++state->inflight;
  g_inflight_->Set(static_cast<int64_t>(state->inflight));
  std::shared_ptr<const AnnotatedDatabase> snapshot = Snapshot();
  const uint64_t conn_id = conn->id;
  eval_pool_->Submit(
      [this, conn_id, request_id, request = std::move(request), token,
       snapshot, admit_micros]() mutable {
        RunQueryJob(conn_id, request_id, std::move(request), token, snapshot,
                    admit_micros);
      });
}

void Server::RunQueryJob(uint64_t conn_id, uint64_t request_id,
                         QueryRequest request,
                         std::shared_ptr<CancellationToken> token,
                         std::shared_ptr<const AnnotatedDatabase> snapshot,
                         uint64_t admit_micros) {
  Completion comp;
  comp.conn_id = conn_id;
  comp.request_id = request_id;
  comp.tenant = request.tenant;
  // The job must always post exactly one completion: an exception
  // escaping here would trip the pool's first-error latch and silently
  // skip sibling jobs.
  try {
    WallTimer timer;
    const uint64_t start_micros = Tracer::Global().NowMicros();
    const uint64_t queue_micros =
        start_micros > admit_micros ? start_micros - admit_micros : 0;
    // Adopt the caller's trace context (if the QUERY frame carried one)
    // so server.query and everything under it parent under the remote
    // caller's span — e.g. the coordinator's dist.scatter — in a merged
    // fleet trace.
    TraceContextScope remote_trace_scope(
        TraceContext{request.trace_id, request.parent_span_id});
    PCDB_TRACE_SPAN(query_span, kSpanServerQuery);
    if (Tracer::enabled() && queue_micros > 0) {
      // The wait happened before this span existed; backfill it as a
      // child interval so the viewer shows admit -> eval contiguously.
      Tracer::Global().RecordInterval(kSpanServerQueueWait, admit_micros,
                                      queue_micros);
    }
    const bool want_profile =
        (request.flags & QueryRequest::kFlagProfile) != 0;

    ExecContext ctx;
    ctx.WithCancellationToken(token);
    ctx.WithTraceContext(CurrentTraceContext());
    if (request.deadline_millis > 0) {
      ctx.WithDeadlineAfterMillis(request.deadline_millis);
    }
    if (request.max_rows > 0) ctx.WithRowBudget(request.max_rows);
    if (request.max_patterns > 0) ctx.WithPatternBudget(request.max_patterns);
    if (request.max_memory_bytes > 0) {
      ctx.WithMemoryBudget(request.max_memory_bytes);
    }

    Result<ExprPtr> plan = PlanSql(request.sql, snapshot->database());
    if (!plan.ok()) {
      comp.status = plan.status();
    } else {
      // Per-table dependencies: table epoch + the fold of the
      // pattern-signature epochs comparable with the query's constant
      // mask. A pattern addition under an incomparable signature leaves
      // every component unchanged, so the entry stays hot.
      const std::map<std::string, uint64_t> masks =
          AnswerCache::QueryConstantMasks(**plan, snapshot->database());
      std::vector<std::string> tables = (*plan)->ScannedTables();
      std::vector<AnswerCache::TableDep> deps;
      deps.reserve(tables.size());
      for (const std::string& t : tables) {
        AnswerCache::TableDep dep;
        dep.table = t;
        dep.epoch = snapshot->database().TableEpoch(t);
        auto mask_it = masks.find(t);
        if (mask_it != masks.end()) dep.query_mask = mask_it->second;
        dep.sig_fold = AnswerCache::FoldSignatureEpochs(
            dep.query_mask, snapshot->PatternSigEpochs(t));
        deps.push_back(std::move(dep));
      }
      // kFlagProfile never changes the answer bytes, so it is masked out
      // of the key — a profiled and an unprofiled run share one entry.
      const std::string key = AnswerCache::MakeKey(
          AnswerCache::NormalizeSql(request.sql),
          request.flags & ~QueryRequest::kFlagProfile, request.max_rows,
          request.max_patterns, request.max_memory_bytes, deps);

      std::shared_ptr<const EncodedAnswer> cached;
      if (options_.enable_cache) cached = cache_.Get(key);
      if (cached != nullptr) {
        c_cache_hits_->Increment();
        comp.answer = cached;
        comp.done.degraded = cached->degraded;
        comp.done.cache_hit = true;
        if (want_profile) {
          QueryProfile profile;
          profile.cache_hit = true;
          profile.degraded = cached->degraded;
          profile.queue_micros = queue_micros;
          comp.profile_json = QueryProfileToJson(profile);
        }
      } else {
        if (options_.enable_cache) c_cache_misses_->Increment();
        AnnotatedEvalOptions eval_options;
        eval_options.instance_aware =
            (request.flags & QueryRequest::kFlagInstanceAware) != 0;
        eval_options.zombies =
            (request.flags & QueryRequest::kFlagZombies) != 0;
        eval_options.num_threads = options_.eval_threads_per_query;
        eval_options.collect_profile = want_profile;
        AnnotatedEvalInfo info;
        WallTimer eval_timer;
        Result<AnnotatedTable> answer =
            EvaluateAnnotated(**plan, *snapshot, eval_options, ctx, &info);
        const double eval_millis = eval_timer.ElapsedMillis();
        if (!answer.ok()) {
          comp.status = answer.status();
        } else {
          PCDB_TRACE_SPAN(encode_span, kSpanServerEncode);
          auto encoded = std::make_shared<EncodedAnswer>(
              EncodeAnswer(*answer, options_.rows_per_batch));
          Status fits = CheckEncodedFrameSizes(*encoded);
          if (!fits.ok()) {
            // Sending an over-limit frame would be rejected by the
            // client's FrameReader as stream corruption, killing the
            // connection; an explicit error keeps it usable.
            comp.status = std::move(fits);
          } else {
            if (options_.enable_cache) {
              cache_.Put(key, std::move(deps), encoded);
            }
            comp.answer = std::move(encoded);
            comp.done.degraded = answer->degraded;
            comp.done.cache_hit = false;
            comp.done.data_millis = info.data_millis;
            comp.done.pattern_millis = info.pattern_millis;
            if (want_profile) {
              QueryProfile profile = std::move(info.profile);
              profile.cache_hit = false;
              profile.degraded = answer->degraded;
              profile.queue_micros = queue_micros;
              profile.eval_micros = eval_millis * 1000.0;
              comp.profile_json = QueryProfileToJson(profile);
            }
          }
        }
      }
    }
    const double total_millis = timer.ElapsedMillis();
    h_latency_->RecordMillis(total_millis);
    if (options_.slow_query_millis > 0 &&
        total_millis >= options_.slow_query_millis) {
      LogWarn("slow query")
          .Float("millis", total_millis)
          .Float("queue_millis", queue_micros / 1000.0)
          .Unum("request_id", request_id)
          .Str("sql", request.sql);
    }
  } catch (const std::exception& e) {
    comp.status =
        Status::Internal(std::string("query worker exception: ") + e.what());
    comp.answer = nullptr;
  } catch (...) {
    comp.status = Status::Internal("query worker: unknown exception");
    comp.answer = nullptr;
  }
  if (!comp.status.ok()) {
    switch (comp.status.code()) {
      case StatusCode::kCancelled:
        c_cancelled_->Increment();
        break;
      case StatusCode::kTimeout:
        c_timeouts_->Increment();
        break;
      default:
        c_errors_->Increment();
        break;
    }
  }
  PostCompletion(std::move(comp));
}

void Server::PostCompletion(Completion completion) {
  {
    MutexLock lock(&completions_mu_);
    completions_.push_back(std::move(completion));
  }
  wake_.Notify();
}

void Server::ProcessCompletions(LoopState* state) {
  std::vector<Completion> batch;
  {
    MutexLock lock(&completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& comp : batch) {
    // Writes never held a query eval slot, so they don't release one.
    // The slot and the tenant's read-quota unit are released even when
    // the connection is gone: the job ran regardless.
    if (!comp.is_write && state->inflight > 0) --state->inflight;
    if (!comp.is_write) DecTenantRead(state, comp.tenant);
    auto it = state->conns.find(comp.conn_id);
    if (it == state->conns.end()) continue;  // connection went away
    Conn* conn = it->second.get();
    conn->tokens.erase(comp.request_id);
    if (comp.is_write && conn->pending_write_acks > 0) {
      --conn->pending_write_acks;
    }
    if (!comp.status.ok()) {
      AppendFrame(&conn->outbuf, FrameType::kError, comp.request_id,
                  EncodeErrorPayload(comp.status));
    } else if (comp.is_write) {
      AppendFrame(&conn->outbuf, comp.write_ack_type, comp.request_id,
                  comp.write_ack);
    } else {
      const EncodedAnswer& answer = *comp.answer;
      AppendFrame(&conn->outbuf, FrameType::kAnswerSchema, comp.request_id,
                  answer.schema);
      for (const std::string& rows : answer.row_batches) {
        AppendFrame(&conn->outbuf, FrameType::kAnswerRows, comp.request_id,
                    rows);
      }
      AppendFrame(&conn->outbuf, FrameType::kAnswerPatterns, comp.request_id,
                  answer.patterns);
      if (!comp.profile_json.empty()) {
        AppendFrame(&conn->outbuf, FrameType::kAnswerProfile, comp.request_id,
                    comp.profile_json);
      }
      AppendFrame(&conn->outbuf, FrameType::kAnswerDone, comp.request_id,
                  EncodeDonePayload(comp.done));
    }
    FlushWrites(conn);
  }
  g_inflight_->Set(static_cast<int64_t>(state->inflight));
  // Freed slots admit queued queries highest tenant tier first, FIFO
  // (admission order) within a tier — the read mirror of the writer's
  // tier-ordered drain.
  while (state->inflight < options_.max_inflight &&
         !state->admit_fifo.empty()) {
    // Compact first: drop ids whose connection closed or died, and
    // entries beyond the connection's queued count (left behind by a
    // queued-CANCEL, which erases the query but not its fifo entry).
    {
      std::map<uint64_t, size_t> entries;
      std::deque<uint64_t> live;
      for (const uint64_t conn_id : state->admit_fifo) {
        auto it = state->conns.find(conn_id);
        if (it == state->conns.end() || it->second->dead) continue;
        size_t& n = entries[conn_id];
        if (n >= it->second->queued.size()) continue;
        ++n;
        live.push_back(conn_id);
      }
      state->admit_fifo.swap(live);
    }
    if (state->admit_fifo.empty()) break;
    // Pick the highest tier among each connection's *front* queued
    // query (later entries of the same connection are considered once
    // the earlier ones dispatched, preserving per-connection order).
    // `closing` conns keep their slot in line: their queued queries
    // were admitted before the half-close and are still owed an answer.
    size_t best = state->admit_fifo.size();
    uint32_t best_tier = 0;
    std::set<uint64_t> considered;
    for (size_t i = 0; i < state->admit_fifo.size(); ++i) {
      const uint64_t conn_id = state->admit_fifo[i];
      if (!considered.insert(conn_id).second) continue;
      const Conn* conn = state->conns.find(conn_id)->second.get();
      const uint32_t tier = TenantTier(conn->queued.front().request.tenant);
      if (best == state->admit_fifo.size() || tier > best_tier) {
        best = i;
        best_tier = tier;
      }
    }
    const uint64_t conn_id = state->admit_fifo[best];
    state->admit_fifo.erase(state->admit_fifo.begin() +
                            static_cast<std::ptrdiff_t>(best));
    Conn* conn = state->conns.find(conn_id)->second.get();
    Conn::QueuedQuery next = std::move(conn->queued.front());
    conn->queued.pop_front();
    DispatchQuery(state, conn, next.request_id, std::move(next.request),
                  next.admit_micros);
  }
}

void Server::FlushWrites(Conn* conn) {
  if (!conn->HasPendingOutput()) return;
  PCDB_TRACE_SPAN(span, kSpanServerFlush);
  // Self-guarding (like HandleReadable): an injected write fault kills
  // only this connection.
  try {
    while (conn->HasPendingOutput()) {
      Result<IoResult> sent = conn->sock.Send(
          conn->outbuf.data() + conn->out_pos,
          conn->outbuf.size() - conn->out_pos);
      if (!sent.ok()) {
        c_conn_faults_->Increment();
        conn->dead = true;
        return;
      }
      if (sent->would_block) break;
      conn->out_pos += sent->bytes;
    }
    if (!conn->HasPendingOutput()) {
      conn->outbuf.clear();
      conn->out_pos = 0;
    } else if (conn->out_pos >= (1u << 20)) {
      conn->outbuf.erase(0, conn->out_pos);
      conn->out_pos = 0;
    }
  } catch (...) {
    c_conn_faults_->Increment();
    conn->dead = true;
  }
}

}  // namespace pcdb
