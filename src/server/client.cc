#include "server/client.h"

#include <utility>

namespace pcdb {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  Client client;
  PCDB_ASSIGN_OR_RETURN(client.sock_, TcpConnect(host, port));
  if (options.recv_timeout_millis > 0) {
    PCDB_RETURN_NOT_OK(
        client.sock_.SetRecvTimeoutMillis(options.recv_timeout_millis));
  }
  return client;
}

Result<uint64_t> Client::SendQuery(const std::string& sql,
                                   const ClientQueryOptions& options) {
  QueryRequest request;
  request.flags = (options.instance_aware ? QueryRequest::kFlagInstanceAware
                                          : 0u) |
                  (options.zombies ? QueryRequest::kFlagZombies : 0u) |
                  (options.profile ? QueryRequest::kFlagProfile : 0u);
  request.deadline_millis = options.deadline_millis;
  request.max_rows = options.max_rows;
  request.max_patterns = options.max_patterns;
  request.max_memory_bytes = options.max_memory_bytes;
  request.sql = sql;
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, request_id,
              EncodeQueryPayload(request));
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  partials_[request_id];  // open the assembly slot
  return request_id;
}

Status Client::FinishSending() { return sock_.ShutdownWrite(); }

Status Client::Cancel(uint64_t request_id) {
  std::string wire;
  AppendFrame(&wire, FrameType::kCancel, request_id,
              EncodeCancelPayload(request_id));
  return sock_.SendAll(wire.data(), wire.size());
}

Result<ClientAnswer> Client::Query(const std::string& sql,
                                   const ClientQueryOptions& options) {
  PCDB_ASSIGN_OR_RETURN(uint64_t request_id, SendQuery(sql, options));
  return ReadAnswer(request_id);
}

Result<ClientAnswer> Client::ReadAnswer(uint64_t request_id) {
  PCDB_RETURN_NOT_OK(PumpUntilComplete(request_id));
  auto it = partials_.find(request_id);
  if (it == partials_.end()) {
    return Status::InvalidArgument("unknown request id " +
                                   std::to_string(request_id));
  }
  Partial partial = std::move(it->second);
  partials_.erase(it);
  if (!partial.error.ok()) return partial.error;
  // Close the canonical byte stream with the degraded flag, mirroring
  // EncodedAnswer::CanonicalBytes.
  partial.encoded.degraded = partial.trailer.degraded;
  partial.canonical_bytes.push_back(partial.trailer.degraded ? 1 : 0);
  ClientAnswer answer;
  PCDB_ASSIGN_OR_RETURN(answer.table, DecodeAnswer(partial.encoded));
  answer.done = partial.trailer;
  answer.canonical_bytes = std::move(partial.canonical_bytes);
  answer.profile = std::move(partial.profile);
  return answer;
}

Result<IngestResult> Client::Ingest(const std::string& table,
                                    std::vector<Tuple> rows,
                                    const ClientWriteOptions& options) {
  IngestRequest request;
  request.tenant = options.tenant;
  request.table = table;
  request.policy = options.policy;
  request.rows = std::move(rows);
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kIngest, request_id,
              EncodeIngestPayload(request));
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  return AwaitIngestResult(request_id);
}

Result<IngestResult> Client::Punctuate(
    const std::string& table,
    std::vector<std::vector<std::string>> patterns,
    const ClientWriteOptions& options) {
  PunctuateRequest request;
  request.tenant = options.tenant;
  request.table = table;
  request.patterns = std::move(patterns);
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kPunctuate, request_id,
              EncodePunctuatePayload(request));
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  return AwaitIngestResult(request_id);
}

Result<IngestResult> Client::AwaitIngestResult(uint64_t request_id) {
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.request_id == request_id) {
      if (frame.type == FrameType::kIngestResult) {
        return DecodeIngestResultPayload(frame.payload);
      }
      if (frame.type == FrameType::kError) {
        Status remote;
        PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
        return remote.ok()
                   ? Status::Internal("server sent an OK error frame")
                   : std::move(remote);
      }
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Status Client::Ping() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kPing, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kPong && frame.request_id == request_id) {
      return Status::OK();
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<std::string> Client::Stats() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kStats, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kStatsResult &&
        frame.request_id == request_id) {
      return std::move(frame.payload);
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Status Client::PumpUntilComplete(uint64_t request_id) {
  for (;;) {
    auto it = partials_.find(request_id);
    if (it != partials_.end() && (it->second.done || !it->second.error.ok())) {
      return Status::OK();
    }
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<Frame> Client::ReadFrame() {
  for (;;) {
    Frame frame;
    PCDB_ASSIGN_OR_RETURN(bool complete, reader_.Next(&frame));
    if (complete) return frame;
    char buf[16384];
    PCDB_ASSIGN_OR_RETURN(IoResult io, sock_.Recv(buf, sizeof(buf)));
    if (io.eof) {
      return Status::Unavailable("server closed the connection");
    }
    if (io.would_block) {
      return Status::Timeout("timed out waiting for a server frame");
    }
    reader_.Feed(buf, io.bytes);
  }
}

Status Client::Absorb(Frame frame) {
  auto it = partials_.find(frame.request_id);
  switch (frame.type) {
    case FrameType::kAnswerSchema:
    case FrameType::kAnswerRows:
    case FrameType::kAnswerPatterns:
    case FrameType::kAnswerProfile:
    case FrameType::kAnswerDone:
    case FrameType::kError:
      break;  // handled below
    case FrameType::kPong:
    case FrameType::kStatsResult:
    case FrameType::kIngestResult:
      // A stale Ping/Stats/Ingest response (e.g. after its caller timed
      // out): nothing is waiting for it, drop.
      return Status::OK();
    default:
      return Status::InvalidArgument("server sent a client-side frame type");
  }
  if (it == partials_.end()) {
    // Answer for a request we no longer track (e.g. abandoned after a
    // timeout); drop it so pipelined siblings can proceed.
    return Status::OK();
  }
  Partial& partial = it->second;
  switch (frame.type) {
    case FrameType::kAnswerSchema:
      partial.has_schema = true;
      partial.canonical_bytes += frame.payload;
      partial.encoded.schema = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerRows:
      if (!partial.has_schema) {
        return Status::InvalidArgument("ANSWER_ROWS before ANSWER_SCHEMA");
      }
      partial.canonical_bytes += frame.payload;
      partial.encoded.row_batches.push_back(std::move(frame.payload));
      return Status::OK();
    case FrameType::kAnswerPatterns:
      if (!partial.has_schema) {
        return Status::InvalidArgument(
            "ANSWER_PATTERNS before ANSWER_SCHEMA");
      }
      partial.canonical_bytes += frame.payload;
      partial.encoded.patterns = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerProfile:
      // Stored verbatim and kept out of canonical_bytes: the profile
      // describes the evaluation, not the answer.
      partial.profile = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerDone: {
      PCDB_ASSIGN_OR_RETURN(partial.trailer,
                            DecodeDonePayload(frame.payload));
      partial.done = true;
      return Status::OK();
    }
    case FrameType::kError: {
      Status remote;
      PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
      partial.error = remote.ok() ? Status::Internal(
                                        "server sent an OK error frame")
                                  : std::move(remote);
      return Status::OK();
    }
    default:
      return Status::OK();  // unreachable; filtered above
  }
}

}  // namespace pcdb
