#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "common/trace_context.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace pcdb {

namespace {

/// Stamps the calling thread's ambient trace context onto an outgoing
/// request (Query/Ingest/Punctuate all carry the same three fields), so
/// server-side spans parent under the caller's span across the process
/// boundary. No ambient span — e.g. a plain pcdb_client run without
/// tracing — leaves the fields 0 and the wire bytes unchanged.
template <typename Request>
void InjectTraceContext(Request* request) {
  const TraceContext current = CurrentTraceContext();
  if (current.trace_id == 0) return;
  request->trace_id = current.trace_id;
  request->parent_span_id = current.span_id;
  request->trace_sampled = Tracer::enabled();
}

/// True when a Status describes the transport dying under us (peer
/// reset/EPIPE on send, EOF or reset on recv) as opposed to a verdict
/// the server delivered in an ERROR frame. The messages are the ones
/// net_socket.cc and Client::ReadFrame attach to those failures; shed
/// and drain rejections are also kUnavailable but carry the server's
/// own text, so they never match.
bool IsTransportStatus(const Status& status) {
  if (status.code() == StatusCode::kUnavailable) {
    const std::string& m = status.message();
    return m == "peer closed the connection" ||
           m == "peer closed the connection mid-message" ||
           m == "server closed the connection";
  }
  if (status.code() == StatusCode::kInternal) {
    // recv/send on a socket whose peer vanished (ECONNRESET surfacing
    // as an errno failure rather than a clean EOF).
    return status.message().rfind("recv failed:", 0) == 0 ||
           status.message().rfind("send failed:", 0) == 0;
  }
  return false;
}

uint64_t PickWriterId() {
  std::random_device rd;
  uint64_t id = 0;
  do {
    id = (static_cast<uint64_t>(rd()) << 32) | rd();
  } while (id == 0);  // 0 means "no idempotence tracking"
  return id;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  Client client;
  PCDB_ASSIGN_OR_RETURN(client.sock_, TcpConnect(host, port));
  if (options.recv_timeout_millis > 0) {
    PCDB_RETURN_NOT_OK(
        client.sock_.SetRecvTimeoutMillis(options.recv_timeout_millis));
  }
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  client.writer_id_ =
      options.writer_id != 0 ? options.writer_id : PickWriterId();
  return client;
}

Status Client::Reconnect() {
  sock_.Close();
  // The old stream's pipelined answers are unreachable; abandon them so
  // stale assembly state can't corrupt answers on the new stream.
  reader_ = FrameReader();
  partials_.clear();
  PCDB_ASSIGN_OR_RETURN(sock_, TcpConnect(host_, port_));
  if (options_.recv_timeout_millis > 0) {
    PCDB_RETURN_NOT_OK(
        sock_.SetRecvTimeoutMillis(options_.recv_timeout_millis));
  }
  GlobalMetrics().GetCounter(kMetricClientReconnectsTotal)->Increment();
  return Status::OK();
}

Result<uint64_t> Client::SendQuery(const std::string& sql,
                                   const ClientQueryOptions& options) {
  QueryRequest request;
  request.flags = (options.instance_aware ? QueryRequest::kFlagInstanceAware
                                          : 0u) |
                  (options.zombies ? QueryRequest::kFlagZombies : 0u) |
                  (options.profile ? QueryRequest::kFlagProfile : 0u);
  request.deadline_millis = options.deadline_millis;
  request.max_rows = options.max_rows;
  request.max_patterns = options.max_patterns;
  request.max_memory_bytes = options.max_memory_bytes;
  request.sql = sql;
  request.tenant = options.tenant;
  InjectTraceContext(&request);
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, request_id,
              EncodeQueryPayload(request));
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  partials_[request_id];  // open the assembly slot
  return request_id;
}

Status Client::FinishSending() { return sock_.ShutdownWrite(); }

Status Client::Cancel(uint64_t request_id) {
  std::string wire;
  AppendFrame(&wire, FrameType::kCancel, request_id,
              EncodeCancelPayload(request_id));
  return sock_.SendAll(wire.data(), wire.size());
}

Result<ClientAnswer> Client::Query(const std::string& sql,
                                   const ClientQueryOptions& options) {
  Result<uint64_t> request_id = SendQuery(sql, options);
  if (request_id.ok()) {
    Result<ClientAnswer> answer = ReadAnswer(*request_id);
    if (answer.ok() || !IsTransportStatus(answer.status())) return answer;
  } else if (!IsTransportStatus(request_id.status())) {
    return request_id.status();
  }
  // The connection died under a read-only request — typically an idle
  // pooled connection the server closed, surfacing as EPIPE/ECONNRESET
  // on the first write. Queries are side-effect free, so one transparent
  // reconnect-and-resend is always safe; a second failure is the
  // caller's problem.
  PCDB_RETURN_NOT_OK(Reconnect());
  PCDB_ASSIGN_OR_RETURN(uint64_t retry_id, SendQuery(sql, options));
  return ReadAnswer(retry_id);
}

Result<ClientAnswer> Client::ReadAnswer(uint64_t request_id) {
  PCDB_RETURN_NOT_OK(PumpUntilComplete(request_id));
  auto it = partials_.find(request_id);
  if (it == partials_.end()) {
    return Status::InvalidArgument("unknown request id " +
                                   std::to_string(request_id));
  }
  Partial partial = std::move(it->second);
  partials_.erase(it);
  if (!partial.error.ok()) return partial.error;
  // Close the canonical byte stream with the degraded flag, mirroring
  // EncodedAnswer::CanonicalBytes.
  partial.encoded.degraded = partial.trailer.degraded;
  partial.canonical_bytes.push_back(partial.trailer.degraded ? 1 : 0);
  ClientAnswer answer;
  PCDB_ASSIGN_OR_RETURN(answer.table, DecodeAnswer(partial.encoded));
  answer.done = partial.trailer;
  answer.canonical_bytes = std::move(partial.canonical_bytes);
  answer.profile = std::move(partial.profile);
  return answer;
}

Result<IngestResult> Client::Ingest(const std::string& table,
                                    std::vector<Tuple> rows,
                                    const ClientWriteOptions& options) {
  IngestRequest request;
  request.tenant = options.tenant;
  request.table = table;
  request.policy = options.policy;
  request.rows = std::move(rows);
  const bool pinned = options.writer_id != 0 && options.seq != 0;
  request.writer_id = pinned ? options.writer_id : writer_id_;
  request.seq = pinned ? options.seq : ++write_seq_;
  InjectTraceContext(&request);
  return WriteWithRetry(FrameType::kIngest, EncodeIngestPayload(request));
}

Result<IngestResult> Client::Punctuate(
    const std::string& table,
    std::vector<std::vector<std::string>> patterns,
    const ClientWriteOptions& options) {
  PunctuateRequest request;
  request.tenant = options.tenant;
  request.table = table;
  request.patterns = std::move(patterns);
  const bool pinned = options.writer_id != 0 && options.seq != 0;
  request.writer_id = pinned ? options.writer_id : writer_id_;
  request.seq = pinned ? options.seq : ++write_seq_;
  InjectTraceContext(&request);
  return WriteWithRetry(FrameType::kPunctuate,
                        EncodePunctuatePayload(request));
}

Result<IngestResult> Client::WriteWithRetry(FrameType type,
                                            const std::string& payload) {
  const int attempts = std::max(1, options_.max_write_attempts);
  int backoff_millis = std::max(1, options_.retry_backoff_initial_millis);
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff, then a fresh connection. The resend
      // is byte-identical (same writer id and seq), so a server that
      // already applied the lost attempt — ack dropped on the floor by
      // the dying connection — answers duplicate=true rather than
      // applying the write twice.
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_millis));
      backoff_millis =
          std::min(backoff_millis * 2, options_.retry_backoff_max_millis);
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        last = std::move(reconnected);
        continue;
      }
    }
    const uint64_t request_id = next_request_id_++;
    std::string wire;
    AppendFrame(&wire, type, request_id, payload);
    Status sent = sock_.SendAll(wire.data(), wire.size());
    if (!sent.ok()) {
      // SendAll failures are transport-level by construction: the
      // request never reached the server's frame decoder intact.
      last = std::move(sent);
      continue;
    }
    bool transport_error = false;
    Result<IngestResult> result =
        AwaitIngestResult(request_id, &transport_error);
    // Server verdicts (shed, quota, policy errors in an ERROR frame)
    // and payload decode failures are final; only a dead stream earns
    // another attempt.
    if (result.ok() || !transport_error) return result;
    last = result.status();
  }
  return last;
}

Result<IngestResult> Client::AwaitIngestResult(uint64_t request_id,
                                               bool* transport_error) {
  for (;;) {
    Result<Frame> read = ReadFrame();
    if (!read.ok()) {
      if (transport_error != nullptr) *transport_error = true;
      return read.status();
    }
    Frame frame = std::move(*read);
    if (frame.request_id == request_id) {
      if (frame.type == FrameType::kIngestResult) {
        return DecodeIngestResultPayload(frame.payload);
      }
      if (frame.type == FrameType::kError) {
        Status remote;
        PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
        return remote.ok()
                   ? Status::Internal("server sent an OK error frame")
                   : std::move(remote);
      }
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<CheckpointResult> Client::Checkpoint() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kCheckpoint, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.request_id == request_id) {
      if (frame.type == FrameType::kCheckpointResult) {
        return DecodeCheckpointResultPayload(frame.payload);
      }
      if (frame.type == FrameType::kError) {
        Status remote;
        PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
        return remote.ok()
                   ? Status::Internal("server sent an OK error frame")
                   : std::move(remote);
      }
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<ShardInfo> Client::GetShardInfo() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kShardInfo, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.request_id == request_id) {
      if (frame.type == FrameType::kShardInfoResult) {
        return DecodeShardInfoPayload(frame.payload);
      }
      if (frame.type == FrameType::kError) {
        Status remote;
        PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
        return remote.ok()
                   ? Status::Internal("server sent an OK error frame")
                   : std::move(remote);
      }
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Status Client::Ping() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kPing, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kPong && frame.request_id == request_id) {
      return Status::OK();
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<std::string> Client::Stats() {
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendFrame(&wire, FrameType::kStats, request_id, "");
  PCDB_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  for (;;) {
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kStatsResult &&
        frame.request_id == request_id) {
      return std::move(frame.payload);
    }
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Status Client::PumpUntilComplete(uint64_t request_id) {
  for (;;) {
    auto it = partials_.find(request_id);
    if (it != partials_.end() && (it->second.done || !it->second.error.ok())) {
      return Status::OK();
    }
    PCDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    PCDB_RETURN_NOT_OK(Absorb(std::move(frame)));
  }
}

Result<Frame> Client::ReadFrame() {
  for (;;) {
    Frame frame;
    PCDB_ASSIGN_OR_RETURN(bool complete, reader_.Next(&frame));
    if (complete) return frame;
    char buf[16384];
    PCDB_ASSIGN_OR_RETURN(IoResult io, sock_.Recv(buf, sizeof(buf)));
    if (io.eof) {
      return Status::Unavailable("server closed the connection");
    }
    if (io.would_block) {
      return Status::Timeout("timed out waiting for a server frame");
    }
    reader_.Feed(buf, io.bytes);
  }
}

Status Client::Absorb(Frame frame) {
  auto it = partials_.find(frame.request_id);
  switch (frame.type) {
    case FrameType::kAnswerSchema:
    case FrameType::kAnswerRows:
    case FrameType::kAnswerPatterns:
    case FrameType::kAnswerProfile:
    case FrameType::kAnswerDone:
    case FrameType::kError:
      break;  // handled below
    case FrameType::kPong:
    case FrameType::kStatsResult:
    case FrameType::kIngestResult:
    case FrameType::kCheckpointResult:
    case FrameType::kShardInfoResult:
      // A stale Ping/Stats/Ingest/Checkpoint/ShardInfo response (e.g.
      // after its caller timed out): nothing is waiting for it, drop.
      return Status::OK();
    default:
      return Status::InvalidArgument("server sent a client-side frame type");
  }
  if (it == partials_.end()) {
    // Answer for a request we no longer track (e.g. abandoned after a
    // timeout); drop it so pipelined siblings can proceed.
    return Status::OK();
  }
  Partial& partial = it->second;
  switch (frame.type) {
    case FrameType::kAnswerSchema:
      partial.has_schema = true;
      partial.canonical_bytes += frame.payload;
      partial.encoded.schema = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerRows:
      if (!partial.has_schema) {
        return Status::InvalidArgument("ANSWER_ROWS before ANSWER_SCHEMA");
      }
      partial.canonical_bytes += frame.payload;
      partial.encoded.row_batches.push_back(std::move(frame.payload));
      return Status::OK();
    case FrameType::kAnswerPatterns:
      if (!partial.has_schema) {
        return Status::InvalidArgument(
            "ANSWER_PATTERNS before ANSWER_SCHEMA");
      }
      partial.canonical_bytes += frame.payload;
      partial.encoded.patterns = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerProfile:
      // Stored verbatim and kept out of canonical_bytes: the profile
      // describes the evaluation, not the answer.
      partial.profile = std::move(frame.payload);
      return Status::OK();
    case FrameType::kAnswerDone: {
      PCDB_ASSIGN_OR_RETURN(partial.trailer,
                            DecodeDonePayload(frame.payload));
      partial.done = true;
      return Status::OK();
    }
    case FrameType::kError: {
      Status remote;
      PCDB_RETURN_NOT_OK(DecodeErrorPayload(frame.payload, &remote));
      partial.error = remote.ok() ? Status::Internal(
                                        "server sent an OK error frame")
                                  : std::move(remote);
      return Status::OK();
    }
    default:
      return Status::OK();  // unreachable; filtered above
  }
}

}  // namespace pcdb
