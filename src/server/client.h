#ifndef PCDB_SERVER_CLIENT_H_
#define PCDB_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/net_socket.h"
#include "server/protocol.h"

/// \file
/// Blocking client for the pcdbd wire protocol. One Client owns one TCP
/// connection; requests may be pipelined (SendQuery several ids, then
/// ReadAnswer each). Not thread-safe — share a connection between
/// threads by external locking, or open one Client per thread (the load
/// generator does the latter).

namespace pcdb {

/// \brief Connection-level knobs.
struct ClientOptions {
  /// SO_RCVTIMEO on the connection: a stuck server surfaces as kTimeout
  /// instead of hanging the caller (important under fault injection).
  int recv_timeout_millis = 30000;
  /// Writer identity for idempotent retry. 0 (the default) picks a
  /// random non-zero id at Connect; the id survives reconnects, so a
  /// retried INGEST/PUNCTUATE carrying the same (writer_id, seq) pair
  /// is recognized by the server and applied exactly once. Tests and
  /// tools may pin an explicit id to simulate a returning writer.
  uint64_t writer_id = 0;
  /// Total send attempts for one Ingest/Punctuate (first try included);
  /// 1 disables retry. Attempts after the first reconnect with capped
  /// exponential backoff and resend the identical frame (same seq).
  int max_write_attempts = 4;
  /// First retry delay; doubles per attempt up to the cap below.
  int retry_backoff_initial_millis = 50;
  int retry_backoff_max_millis = 2000;
};

/// \brief Per-query execution limits, mirrored onto the QUERY header.
struct ClientQueryOptions {
  uint32_t deadline_millis = 0;  ///< 0 = none.
  uint64_t max_rows = 0;         ///< 0 = unlimited.
  uint64_t max_patterns = 0;
  uint64_t max_memory_bytes = 0;
  bool instance_aware = false;
  bool zombies = false;
  /// Request an ANSWER_PROFILE frame (per-operator EXPLAIN ANALYZE
  /// JSON); arrives in ClientAnswer::profile.
  bool profile = false;
  /// Tenant name for the server's per-tenant *read* quota and priority
  /// tier (the query-side mirror of ClientWriteOptions::tenant); "" is
  /// a valid (tier-0) tenant.
  std::string tenant;
};

/// \brief Per-write knobs, mirrored onto INGEST/PUNCTUATE headers.
struct ClientWriteOptions {
  /// Tenant name for the server's per-tenant write quota and priority
  /// tier; "" is a valid (tier-0) tenant.
  std::string tenant;
  /// Late-record policy: what the server does with a row that violates
  /// an existing completeness promise (IngestRequest::kPolicyRejectRecord
  /// or kPolicyRetractPatterns).
  uint8_t policy = IngestRequest::kPolicyRejectRecord;
  /// Explicit idempotence identity for this one write; (0, 0) — the
  /// default — uses the Client's own writer_id and next sequence
  /// number. The coordinator pins these to the *front* client's
  /// (writer_id, seq), so re-broadcasting a partially failed fan-out
  /// carries the same identity to every shard and the shards that
  /// already applied it dedup instead of double-applying.
  uint64_t writer_id = 0;
  uint64_t seq = 0;
};

/// \brief A fully received annotated answer.
struct ClientAnswer {
  AnnotatedTable table;  ///< Decoded rows + patterns + degraded flag.
  AnswerDone done;       ///< Server-side timings, cache_hit, degraded.
  /// Concatenated raw answer payloads exactly as received — comparable
  /// byte-for-byte against EncodeAnswer(...).CanonicalBytes() of an
  /// in-process evaluation (the wire-fidelity contract).
  std::string canonical_bytes;
  /// ANSWER_PROFILE payload verbatim (QueryProfileToJson text); empty
  /// unless the query asked for a profile. Deliberately excluded from
  /// canonical_bytes — the profile describes the run, not the answer.
  std::string profile;
};

/// \brief A pcdbd protocol client over one TCP connection.
class Client {
 public:
  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options = {});

  bool connected() const { return sock_.valid(); }

  /// Round-trips one query: SendQuery + ReadAnswer. Evaluation errors
  /// (kCancelled, kTimeout, kResourceExhausted, parse errors, ...)
  /// come back as this Result's Status, with the same code and message
  /// the in-process evaluation would produce.
  [[nodiscard]] Result<ClientAnswer> Query(const std::string& sql,
                             const ClientQueryOptions& options = {});

  /// Pipelined send; returns the request id to pass to ReadAnswer or
  /// Cancel.
  [[nodiscard]] Result<uint64_t> SendQuery(const std::string& sql,
                             const ClientQueryOptions& options = {});

  /// Half-closes the connection (shutdown(SHUT_WR)): tells the server
  /// no more requests are coming. Answers to already-sent (pipelined)
  /// queries still arrive — the server drains what it owes, then
  /// closes. No further Send* calls are valid after this.
  [[nodiscard]] Status FinishSending();

  /// Requests cancellation of an in-flight query. No acknowledgement:
  /// the query itself answers (usually with a kCancelled error).
  [[nodiscard]] Status Cancel(uint64_t request_id);

  /// Blocks until the answer (or error) for `request_id` arrives.
  /// Frames for other pipelined requests arriving first are buffered.
  [[nodiscard]] Result<ClientAnswer> ReadAnswer(uint64_t request_id);

  /// Streams `rows` into `table`, waiting for the server's INGEST_RESULT
  /// ack. Shed writes (queue full / tenant quota) come back as
  /// kUnavailable; a violating row under kPolicyRejectRecord is counted
  /// in the ack (`rows_rejected`, `violations`), not an error.
  [[nodiscard]] Result<IngestResult> Ingest(const std::string& table,
                              std::vector<Tuple> rows,
                              const ClientWriteOptions& options = {});

  /// Asserts completeness patterns over `table` (each pattern is one
  /// display field per column, "*" = wildcard) and waits for the ack.
  [[nodiscard]] Result<IngestResult> Punctuate(
      const std::string& table,
      std::vector<std::vector<std::string>> patterns,
      const ClientWriteOptions& options = {});

  /// Asks the server to checkpoint its durable state now (serialize the
  /// current snapshot, truncate the WAL). Fails with kUnavailable when
  /// the server runs without a WAL.
  [[nodiscard]] Result<CheckpointResult> Checkpoint();

  /// Liveness round trip.
  [[nodiscard]] Status Ping();

  /// Fetches the server's shard placement + per-table epochs
  /// (docs/DISTRIBUTED.md). A non-sharded server reports shard 0 of 1.
  [[nodiscard]] Result<ShardInfo> GetShardInfo();

  /// Fetches the server's metrics/cache snapshot (JSON).
  [[nodiscard]] Result<std::string> Stats();

  /// The idempotence identity stamped onto INGEST/PUNCTUATE frames;
  /// stable across reconnects for the life of this Client.
  uint64_t writer_id() const { return writer_id_; }

  void Close() { sock_.Close(); }

 private:
  /// In-progress answer assembly for one request id.
  struct Partial {
    bool has_schema = false;
    EncodedAnswer encoded;
    std::string canonical_bytes;
    bool done = false;
    AnswerDone trailer;
    std::string profile;  // ANSWER_PROFILE payload, verbatim
    Status error;  // non-OK once an ERROR frame arrived
  };

  /// Reads frames until one with `request_id` completes (done or error).
  [[nodiscard]] Status PumpUntilComplete(uint64_t request_id);

  /// Reads frames until the INGEST_RESULT (or ERROR) for `request_id`
  /// arrives; answer frames for pipelined queries are absorbed. When
  /// the failure is the stream dying (EOF, reset, recv timeout) rather
  /// than a server verdict, `*transport_error` is set — the signal that
  /// an idempotent resend over a fresh connection is worthwhile.
  [[nodiscard]] Result<IngestResult> AwaitIngestResult(uint64_t request_id,
                                                       bool* transport_error);

  /// Sends one already-encoded write frame and awaits its ack, with up
  /// to options_.max_write_attempts tries. The payload carries the
  /// writer id and sequence number, so every resend is byte-identical
  /// and the server dedups it.
  [[nodiscard]] Result<IngestResult> WriteWithRetry(FrameType type,
                                                    const std::string& payload);

  /// Tears down the dead connection and dials a fresh one (same host,
  /// port, options). Pipelined state is abandoned: the old stream's
  /// answers can never arrive. Bumps client_reconnects_total.
  [[nodiscard]] Status Reconnect();

  /// Reads one frame from the socket (blocking, honours recv timeout).
  [[nodiscard]] Result<Frame> ReadFrame();

  /// Folds one frame into partials_.
  [[nodiscard]] Status Absorb(Frame frame);

  Socket sock_;
  FrameReader reader_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Partial> partials_;
  /// Dial-back state for transparent reconnect.
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  /// Idempotence identity: stamped with write_seq_ onto every write.
  uint64_t writer_id_ = 0;
  uint64_t write_seq_ = 0;
};

}  // namespace pcdb

#endif  // PCDB_SERVER_CLIENT_H_
