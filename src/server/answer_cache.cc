#include "server/answer_cache.h"

#include <algorithm>
#include <functional>

#include "obs/trace.h"

namespace pcdb {

AnswerCache::AnswerCache() : AnswerCache(Options()) {}

AnswerCache::AnswerCache(Options options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  shard_max_bytes_ = std::max<size_t>(1, options_.max_bytes /
                                             options_.num_shards);
  shard_max_entries_ = std::max<size_t>(1, options_.max_entries /
                                               options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const EncodedAnswer> AnswerCache::Get(const std::string& key) {
  PCDB_TRACE_SPAN(span, "cache.get");
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    span.Arg("hit", 0);
    return nullptr;
  }
  ++shard.hits;
  span.Arg("hit", 1);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->answer;
}

void AnswerCache::Put(const std::string& key,
                      std::vector<std::string> tables,
                      std::shared_ptr<const EncodedAnswer> answer) {
  if (answer == nullptr) return;
  PCDB_TRACE_SPAN(span, "cache.put");
  const size_t bytes = key.size() + answer->TotalBytes();
  span.Arg("bytes", bytes);
  if (bytes > shard_max_bytes_) return;  // would evict a whole shard
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(tables), std::move(answer),
                             bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.lru.size() > shard_max_entries_ ||
         shard.bytes > shard_max_bytes_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

size_t AnswerCache::InvalidateTable(const std::string& table) {
  size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const bool depends =
          std::find(it->tables.begin(), it->tables.end(), table) !=
          it->tables.end();
      if (depends) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.invalidations;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void AnswerCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

AnswerCache::Stats AnswerCache::GetStats() const {
  Stats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

std::string AnswerCache::MakeKey(
    const std::string& normalized_sql, uint32_t flags, uint64_t max_rows,
    uint64_t max_patterns, uint64_t max_memory_bytes,
    std::vector<std::pair<std::string, uint64_t>> table_epochs) {
  std::sort(table_epochs.begin(), table_epochs.end());
  table_epochs.erase(std::unique(table_epochs.begin(), table_epochs.end()),
                     table_epochs.end());
  std::string key = normalized_sql;
  key += "\x1f";
  key += std::to_string(flags) + "," + std::to_string(max_rows) + "," +
         std::to_string(max_patterns) + "," +
         std::to_string(max_memory_bytes);
  for (const auto& [table, epoch] : table_epochs) {
    key += "\x1f" + table + "@" + std::to_string(epoch);
  }
  return key;
}

std::string AnswerCache::NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  bool in_literal = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_literal) {
      // Whitespace inside a '...' literal is part of the query's value
      // (lexer.cc), so it must stay part of the key byte-for-byte.
      out.push_back(c);
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back('\'');  // '' escape: still inside the literal
          ++i;
        } else {
          in_literal = false;
        }
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') in_literal = true;
    out.push_back(c);
  }
  // An unterminated literal never parses, so it never reaches the cache;
  // guarding here just keeps the transform well-defined on any input.
  while (!out.empty() && !in_literal &&
         (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace pcdb
