#include "server/answer_cache.h"

#include <algorithm>
#include <functional>

#include "obs/names.h"
#include "obs/trace.h"
#include "pattern/signature.h"

namespace pcdb {

AnswerCache::AnswerCache() : AnswerCache(Options()) {}

AnswerCache::AnswerCache(Options options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  shard_max_bytes_ = std::max<size_t>(1, options_.max_bytes /
                                             options_.num_shards);
  shard_max_entries_ = std::max<size_t>(1, options_.max_entries /
                                               options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const EncodedAnswer> AnswerCache::Get(const std::string& key) {
  PCDB_TRACE_SPAN(span, kSpanCacheGet);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    span.Arg("hit", 0);
    return nullptr;
  }
  ++shard.hits;
  span.Arg("hit", 1);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->answer;
}

void AnswerCache::Put(const std::string& key, std::vector<TableDep> deps,
                      std::shared_ptr<const EncodedAnswer> answer) {
  if (answer == nullptr) return;
  PCDB_TRACE_SPAN(span, kSpanCachePut);
  const size_t bytes = key.size() + answer->TotalBytes();
  span.Arg("bytes", bytes);
  if (bytes > shard_max_bytes_) return;  // would evict a whole shard
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(deps), std::move(answer),
                             bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.lru.size() > shard_max_entries_ ||
         shard.bytes > shard_max_bytes_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

template <typename Pred>
size_t AnswerCache::InvalidateMatching(Pred drops, bool fine_grained) {
  size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (drops(*it)) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        if (fine_grained) {
          ++shard.sig_invalidations;
        } else {
          ++shard.invalidations;
        }
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t AnswerCache::InvalidateTable(const std::string& table) {
  return InvalidateMatching(
      [&table](const Entry& entry) {
        for (const TableDep& dep : entry.deps) {
          if (dep.table == table) return true;
        }
        return false;
      },
      /*fine_grained=*/false);
}

size_t AnswerCache::InvalidateSignature(const std::string& table,
                                        uint64_t signature) {
  return InvalidateMatching(
      [&table, signature](const Entry& entry) {
        for (const TableDep& dep : entry.deps) {
          if (dep.table == table &&
              SignaturesComparable(dep.query_mask, signature)) {
            return true;
          }
        }
        return false;
      },
      /*fine_grained=*/true);
}

void AnswerCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

AnswerCache::Stats AnswerCache::GetStats() const {
  Stats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.sig_invalidations += shard.sig_invalidations;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

std::string AnswerCache::MakeKey(const std::string& normalized_sql,
                                 uint32_t flags, uint64_t max_rows,
                                 uint64_t max_patterns,
                                 uint64_t max_memory_bytes,
                                 std::vector<TableDep> deps) {
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  std::string key = normalized_sql;
  key += "\x1f";
  key += std::to_string(flags) + "," + std::to_string(max_rows) + "," +
         std::to_string(max_patterns) + "," +
         std::to_string(max_memory_bytes);
  for (const TableDep& dep : deps) {
    // The query mask is derivable from the SQL text, but keying it
    // explicitly keeps the key self-describing and immune to mask
    // computation changing across versions.
    key += "\x1f" + dep.table + "@" + std::to_string(dep.epoch) + "#" +
           std::to_string(dep.query_mask) + ":" +
           std::to_string(dep.sig_fold);
  }
  return key;
}

uint64_t AnswerCache::FoldSignatureEpochs(
    uint64_t query_mask, const std::map<uint64_t, uint64_t>& sig_epochs) {
  // FNV-1a over the comparable (signature, epoch) pairs. std::map
  // iterates in sorted order, so the fold is deterministic.
  uint64_t h = 1469598103934665603ull;
  for (const auto& [sig, epoch] : sig_epochs) {
    if (!SignaturesComparable(sig, query_mask)) continue;
    h = (h ^ sig) * 1099511628211ull;
    h = (h ^ epoch) * 1099511628211ull;
  }
  return h;
}

namespace {

void CollectScans(const Expr& e,
                  std::vector<std::pair<std::string, std::string>>* out) {
  if (e.kind() == ExprKind::kScan) {
    out->emplace_back(e.table_name(), e.alias());
  }
  if (e.left() != nullptr) CollectScans(*e.left(), out);
  if (e.right() != nullptr) CollectScans(*e.right(), out);
}

void CollectConstAttrs(const Expr& e, std::vector<std::string>* out) {
  if (e.kind() == ExprKind::kSelectConst) out->push_back(e.attr());
  if (e.left() != nullptr) CollectConstAttrs(*e.left(), out);
  if (e.right() != nullptr) CollectConstAttrs(*e.right(), out);
}

/// Index of column `name` in `schema`, or npos.
size_t ColumnIndex(const Schema& schema, const std::string& name) {
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (schema.column(i).name == name) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

std::map<std::string, uint64_t> AnswerCache::QueryConstantMasks(
    const Expr& plan, const Database& db) {
  std::vector<std::pair<std::string, std::string>> scans;  // (table, alias)
  CollectScans(plan, &scans);
  std::vector<std::string> const_attrs;
  CollectConstAttrs(plan, &const_attrs);

  std::map<std::string, uint64_t> masks;
  for (const auto& [table, alias] : scans) masks[table] = 0;

  for (const std::string& attr : const_attrs) {
    // Split "Q.name" into qualifier and bare name; bare attrs have no
    // qualifier and match any scan carrying that column.
    std::string qualifier;
    std::string name = attr;
    const size_t dot = attr.find('.');
    if (dot != std::string::npos) {
      qualifier = attr.substr(0, dot);
      name = attr.substr(dot + 1);
    }
    for (const auto& [table, alias] : scans) {
      if (!qualifier.empty()) {
        const bool alias_match = !alias.empty() && alias == qualifier;
        const bool table_match = alias.empty() && table == qualifier;
        if (!alias_match && !table_match) continue;
      }
      auto stored = db.GetTable(table);
      if (!stored.ok()) continue;
      const size_t idx = ColumnIndex((*stored)->schema(), name);
      if (idx == static_cast<size_t>(-1) || idx >= 64) continue;
      masks[table] |= uint64_t{1} << idx;
    }
  }
  return masks;
}

std::string AnswerCache::NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  bool in_literal = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_literal) {
      // Whitespace inside a '...' literal is part of the query's value
      // (lexer.cc), so it must stay part of the key byte-for-byte.
      out.push_back(c);
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back('\'');  // '' escape: still inside the literal
          ++i;
        } else {
          in_literal = false;
        }
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') in_literal = true;
    out.push_back(c);
  }
  // An unterminated literal never parses, so it never reaches the cache;
  // guarding here just keeps the transform well-defined on any input.
  while (!out.empty() && !in_literal &&
         (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace pcdb
