#ifndef PCDB_SERVER_ANSWER_CACHE_H_
#define PCDB_SERVER_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "relational/expr.h"
#include "server/protocol.h"

/// \file
/// A sharded LRU cache of encoded query answers.
///
/// Keys bind the answer to everything that determines it: the normalized
/// SQL text, the evaluation flags and budgets, and — per base table the
/// plan scans — the table epoch plus a fold of the *pattern-signature
/// epochs* whose signature is comparable with the query's constant mask
/// over that table.
///
/// Epoch discipline (see docs/SERVER.md "Signature-keyed invalidation"):
///
///  - data mutations and pattern *retractions* bump the table epoch
///    (Database::TableEpoch) — wholesale, conservative;
///  - pattern *additions* bump only the per-signature epoch
///    (AnnotatedDatabase::PatternSigEpochs) of the added pattern's
///    constant-position signature (pattern/signature.h).
///
/// A cached entry whose query mask is incomparable with the mutated
/// signature keeps a matching key and survives. That is sound: a
/// pattern addition never changes answer rows, and the entry's
/// completeness annotation was derived from promises that still hold —
/// at worst it under-reports completeness until the entry ages out,
/// which never over-claims. Explicit InvalidateTable() /
/// InvalidateSignature() additionally reclaim dead entries eagerly so
/// memory is not held hostage by unreachable answers until LRU pressure
/// finds them.

namespace pcdb {

/// \brief Thread-safe sharded LRU cache mapping key strings to
/// shared immutable EncodedAnswers.
class AnswerCache {
 public:
  struct Options {
    /// Independent LRU shards; keys hash to a shard. More shards = less
    /// lock contention; capacity is divided evenly among them.
    size_t num_shards = 8;
    /// Total byte budget across all shards (answer payload bytes).
    size_t max_bytes = 64u << 20;
    /// Total entry budget across all shards.
    size_t max_entries = 4096;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU-pressure removals.
    uint64_t invalidations = 0;  ///< InvalidateTable removals.
    /// InvalidateSignature removals (fine-grained; a subset of what
    /// InvalidateTable would have dropped).
    uint64_t sig_invalidations = 0;
    size_t entries = 0;          ///< Current entry count.
    size_t bytes = 0;            ///< Current byte footprint.
  };

  /// \brief One base-table dependency of a cached answer.
  struct TableDep {
    std::string table;
    /// Database::TableEpoch at evaluation time.
    uint64_t epoch = 0;
    /// Constant-position mask of the query over this table's columns
    /// (QueryConstantMasks). The default ~0 is comparable with every
    /// signature, i.e. "invalidate on any pattern mutation" —
    /// conservative and always correct.
    uint64_t query_mask = ~uint64_t{0};
    /// FoldSignatureEpochs over the table's signature epochs at
    /// evaluation time.
    uint64_t sig_fold = 0;

    friend bool operator==(const TableDep& a, const TableDep& b) {
      return a.table == b.table && a.epoch == b.epoch &&
             a.query_mask == b.query_mask && a.sig_fold == b.sig_fold;
    }
    friend bool operator<(const TableDep& a, const TableDep& b) {
      if (a.table != b.table) return a.table < b.table;
      if (a.epoch != b.epoch) return a.epoch < b.epoch;
      if (a.query_mask != b.query_mask) return a.query_mask < b.query_mask;
      return a.sig_fold < b.sig_fold;
    }
  };

  /// Default options. (A `= {}` default argument would need Options'
  /// member initializers before the enclosing class is complete, which
  /// GCC rejects for nested classes.)
  AnswerCache();
  explicit AnswerCache(Options options);

  /// Looks up `key`, promoting the entry to most-recent. Null on miss.
  std::shared_ptr<const EncodedAnswer> Get(const std::string& key);

  /// Inserts (or replaces) `key`. `deps` lists the base tables the
  /// answer depends on (with the query's constant mask per table), for
  /// InvalidateTable / InvalidateSignature. Oversized answers (larger
  /// than a whole shard's byte budget) are not cached.
  void Put(const std::string& key, std::vector<TableDep> deps,
           std::shared_ptr<const EncodedAnswer> answer);

  /// Drops every entry depending on `table`; returns how many.
  size_t InvalidateTable(const std::string& table);

  /// Drops every entry depending on `table` whose query mask is
  /// comparable with `signature` (SignaturesComparable); entries under
  /// incomparable masks survive. Returns how many were dropped. Only
  /// valid for pattern *additions* — retractions must use
  /// InvalidateTable (see file comment).
  size_t InvalidateSignature(const std::string& table, uint64_t signature);

  /// Drops everything.
  void Clear();

  Stats GetStats() const;

  /// Builds a cache key. `deps` must list every scanned table with its
  /// current epoch, query mask and signature fold; order-insensitive
  /// (sorted internally), duplicates (self-joins) welcome.
  static std::string MakeKey(const std::string& normalized_sql,
                             uint32_t flags, uint64_t max_rows,
                             uint64_t max_patterns,
                             uint64_t max_memory_bytes,
                             std::vector<TableDep> deps);

  /// Folds the signature epochs comparable with `query_mask` into one
  /// key-ready hash. Signatures incomparable with the mask are skipped,
  /// so additions under them leave the fold (and thus the key)
  /// unchanged.
  static uint64_t FoldSignatureEpochs(
      uint64_t query_mask, const std::map<uint64_t, uint64_t>& sig_epochs);

  /// The constant-position mask of `plan` over each base table it
  /// scans: bit i set when some σ_{attr=const} in the plan resolves to
  /// column i of that table (bare or alias-qualified; positions ≥ 64
  /// are dropped, matching PatternConstantSignature's cap). Tables with
  /// no constant selection get mask 0, which is comparable with every
  /// signature — conservative. The resolution is best-effort string
  /// matching; inaccuracy in either direction only costs cache
  /// precision, never soundness (see file comment).
  static std::map<std::string, uint64_t> QueryConstantMasks(
      const Expr& plan, const Database& db);

  /// Whitespace-normalizes SQL (collapse runs, trim, drop a trailing
  /// ';') so trivially reformatted queries share a cache entry.
  static std::string NormalizeSql(const std::string& sql);

 private:
  struct Entry {
    std::string key;
    std::vector<TableDep> deps;
    std::shared_ptr<const EncodedAnswer> answer;
    size_t bytes = 0;
  };

  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru PCDB_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        PCDB_GUARDED_BY(mu);
    size_t bytes PCDB_GUARDED_BY(mu) = 0;
    uint64_t hits PCDB_GUARDED_BY(mu) = 0;
    uint64_t misses PCDB_GUARDED_BY(mu) = 0;
    uint64_t insertions PCDB_GUARDED_BY(mu) = 0;
    uint64_t evictions PCDB_GUARDED_BY(mu) = 0;
    uint64_t invalidations PCDB_GUARDED_BY(mu) = 0;
    uint64_t sig_invalidations PCDB_GUARDED_BY(mu) = 0;
  };

  /// Shared sweep: drops entries for which `drops` returns true.
  template <typename Pred>
  size_t InvalidateMatching(Pred drops, bool fine_grained);

  Shard& ShardFor(const std::string& key);

  Options options_;
  size_t shard_max_bytes_;
  size_t shard_max_entries_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcdb

#endif  // PCDB_SERVER_ANSWER_CACHE_H_
