#ifndef PCDB_SERVER_ANSWER_CACHE_H_
#define PCDB_SERVER_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "server/protocol.h"

/// \file
/// A sharded LRU cache of encoded query answers.
///
/// Keys bind the answer to everything that determines it: the normalized
/// SQL text, the evaluation flags and budgets, and a (table, epoch) pair
/// for every base table the plan scans. Epochs (Database::TableEpoch)
/// advance on every data or pattern mutation, so a stale entry can never
/// be *returned* — its key no longer matches. Explicit
/// InvalidateTable() additionally reclaims dead entries eagerly; the
/// server calls it from UpdateDatabase so memory is not held hostage by
/// unreachable answers until LRU pressure finds them.

namespace pcdb {

/// \brief Thread-safe sharded LRU cache mapping key strings to
/// shared immutable EncodedAnswers.
class AnswerCache {
 public:
  struct Options {
    /// Independent LRU shards; keys hash to a shard. More shards = less
    /// lock contention; capacity is divided evenly among them.
    size_t num_shards = 8;
    /// Total byte budget across all shards (answer payload bytes).
    size_t max_bytes = 64u << 20;
    /// Total entry budget across all shards.
    size_t max_entries = 4096;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU-pressure removals.
    uint64_t invalidations = 0;  ///< InvalidateTable removals.
    size_t entries = 0;          ///< Current entry count.
    size_t bytes = 0;            ///< Current byte footprint.
  };

  /// Default options. (A `= {}` default argument would need Options'
  /// member initializers before the enclosing class is complete, which
  /// GCC rejects for nested classes.)
  AnswerCache();
  explicit AnswerCache(Options options);

  /// Looks up `key`, promoting the entry to most-recent. Null on miss.
  std::shared_ptr<const EncodedAnswer> Get(const std::string& key);

  /// Inserts (or replaces) `key`. `tables` lists the base tables the
  /// answer depends on, for InvalidateTable. Oversized answers (larger
  /// than a whole shard's byte budget) are not cached.
  void Put(const std::string& key, std::vector<std::string> tables,
           std::shared_ptr<const EncodedAnswer> answer);

  /// Drops every entry depending on `table`; returns how many.
  size_t InvalidateTable(const std::string& table);

  /// Drops everything.
  void Clear();

  Stats GetStats() const;

  /// Builds a cache key. `table_epochs` must list every scanned table
  /// with its current epoch; order-insensitive (sorted internally),
  /// duplicates (self-joins) welcome.
  static std::string MakeKey(
      const std::string& normalized_sql, uint32_t flags, uint64_t max_rows,
      uint64_t max_patterns, uint64_t max_memory_bytes,
      std::vector<std::pair<std::string, uint64_t>> table_epochs);

  /// Whitespace-normalizes SQL (collapse runs, trim, drop a trailing
  /// ';') so trivially reformatted queries share a cache entry.
  static std::string NormalizeSql(const std::string& sql);

 private:
  struct Entry {
    std::string key;
    std::vector<std::string> tables;
    std::shared_ptr<const EncodedAnswer> answer;
    size_t bytes = 0;
  };

  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru PCDB_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        PCDB_GUARDED_BY(mu);
    size_t bytes PCDB_GUARDED_BY(mu) = 0;
    uint64_t hits PCDB_GUARDED_BY(mu) = 0;
    uint64_t misses PCDB_GUARDED_BY(mu) = 0;
    uint64_t insertions PCDB_GUARDED_BY(mu) = 0;
    uint64_t evictions PCDB_GUARDED_BY(mu) = 0;
    uint64_t invalidations PCDB_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key);

  Options options_;
  size_t shard_max_bytes_;
  size_t shard_max_entries_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcdb

#endif  // PCDB_SERVER_ANSWER_CACHE_H_
