#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace pcdb {

bool Token::IsKeyword(const std::string& keyword) const {
  return kind == TokenKind::kIdentifier && ToUpper(text) == ToUpper(keyword);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto peek = [&](size_t offset = 0) -> char {
    return i + offset < n ? sql[i + offset] : '\0';
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdentifier, sql.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      bool is_double = false;
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_double = true;
        ++i;
      }
      tokens.push_back({is_double ? TokenKind::kDouble : TokenKind::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '=':
        kind = TokenKind::kEquals;
        break;
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case ';':
        ++i;
        continue;  // statement terminator is ignored
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    tokens.push_back({kind, std::string(1, c), start});
    ++i;
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace pcdb
