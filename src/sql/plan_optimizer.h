#ifndef PCDB_SQL_PLAN_OPTIMIZER_H_
#define PCDB_SQL_PLAN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/annotated.h"
#include "relational/expr.h"
#include "sql/ast.h"

namespace pcdb {

/// \brief What a plan is optimized for (§6, "Plan Generation and
/// Execution").
///
/// The paper observes that the metadata (completeness patterns) can be
/// very different from the data in size and distribution, so the optimal
/// plan for query computation may not be optimal for completeness
/// calculation — and suggests a dedicated cost model for the metadata
/// plan. This module implements that suggestion: it enumerates left-deep
/// join orders and scores each either by estimated data cost or by
/// *exact* metadata cost (pattern sets are small enough that the
/// "estimate" can simply run the schema-level pattern algebra).
enum class PlanObjective {
  /// Minimize estimated intermediate data sizes (classical optimizer).
  kData,
  /// Minimize the summed sizes of intermediate pattern sets.
  kMetadata,
};

/// \brief One scored candidate plan.
struct PlanChoice {
  ExprPtr plan;
  std::vector<size_t> join_order;  // indices into stmt.from
  double cost = 0;
};

/// \brief Result of plan optimization: the chosen plan plus the scored
/// alternatives (sorted by cost, best first) for inspection.
struct OptimizedPlan {
  PlanChoice best;
  std::vector<PlanChoice> candidates;
};

/// Enumerates all join orders of stmt.from (at most `max_orders`
/// permutations; FROM lists beyond 7 tables are rejected) and picks the
/// cheapest under `objective`. Data costs use leaf cardinalities after
/// constant pushdown and a distinct-value join estimate; metadata costs
/// run the pattern algebra per candidate.
[[nodiscard]] Result<OptimizedPlan> OptimizePlan(const SelectStatement& stmt,
                                   const AnnotatedDatabase& adb,
                                   PlanObjective objective);

/// Parses, then optimizes.
[[nodiscard]] Result<OptimizedPlan> OptimizeSql(const std::string& sql,
                                  const AnnotatedDatabase& adb,
                                  PlanObjective objective);

}  // namespace pcdb

#endif  // PCDB_SQL_PLAN_OPTIMIZER_H_
