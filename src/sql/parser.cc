#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pcdb {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    PCDB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseBlock());
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Current().text + "'");
    }
    return stmt;
  }

  Result<std::vector<SelectStatement>> ParseUnionQuery() {
    std::vector<SelectStatement> blocks;
    for (;;) {
      PCDB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseBlock());
      blocks.push_back(std::move(stmt));
      if (!Current().IsKeyword("UNION")) break;
      Advance();
      PCDB_RETURN_NOT_OK(ExpectKeyword("ALL"));
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Current().text + "'");
    }
    return blocks;
  }

 private:
  Result<SelectStatement> ParseBlock() {
    SelectStatement stmt;
    PCDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PCDB_RETURN_NOT_OK(ParseSelectList(&stmt));
    PCDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PCDB_RETURN_NOT_OK(ParseFrom(&stmt));
    if (Current().IsKeyword("WHERE")) {
      Advance();
      PCDB_RETURN_NOT_OK(ParseWhere(&stmt));
    }
    if (Current().IsKeyword("GROUP")) {
      Advance();
      PCDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      PCDB_RETURN_NOT_OK(ParseGroupBy(&stmt));
    }
    if (Current().IsKeyword("ORDER")) {
      Advance();
      PCDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      PCDB_RETURN_NOT_OK(ParseOrderBy(&stmt));
    }
    if (Current().IsKeyword("LIMIT")) {
      Advance();
      if (Current().kind != TokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      PCDB_ASSIGN_OR_RETURN(Value count,
                            Value::Parse(Current().text, ValueType::kInt64));
      if (count.int64() < 0) return Error("LIMIT must be non-negative");
      stmt.has_limit = true;
      stmt.limit = static_cast<size_t>(count.int64());
      Advance();
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t offset = 1) const {
    size_t at = pos_ + offset;
    return at < tokens_.size() ? tokens_[at] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Current().position) + ")");
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!Current().IsKeyword(keyword)) {
      return Error("expected " + keyword);
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Current().kind != TokenKind::kIdentifier) {
      return Error("expected identifier, got '" + Current().text + "'");
    }
    std::string text = Current().text;
    Advance();
    return text;
  }

  Result<ColumnRef> ParseColumnRef() {
    PCDB_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    if (Current().kind == TokenKind::kDot) {
      Advance();
      PCDB_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
      return ColumnRef{std::move(first), std::move(second)};
    }
    return ColumnRef{"", std::move(first)};
  }

  static bool IsAggKeyword(const Token& token, AggFunc* func) {
    static constexpr std::pair<const char*, AggFunc> kFuncs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
        {"AVG", AggFunc::kAvg},
    };
    for (const auto& [name, f] : kFuncs) {
      if (token.IsKeyword(name)) {
        *func = f;
        return true;
      }
    }
    return false;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Current().kind == TokenKind::kStar) {
      Advance();
      stmt->select_star = true;
      return Status::OK();
    }
    for (;;) {
      SelectItem item;
      AggFunc func;
      if (IsAggKeyword(Current(), &func) &&
          Peek().kind == TokenKind::kLParen) {
        item.is_aggregate = true;
        item.func = func;
        Advance();  // function name
        Advance();  // '('
        if (Current().kind == TokenKind::kStar) {
          if (func != AggFunc::kCount) {
            return Error("only COUNT accepts *");
          }
          item.count_star = true;
          Advance();
        } else {
          PCDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        }
        if (Current().kind != TokenKind::kRParen) {
          return Error("expected ) after aggregate argument");
        }
        Advance();
      } else {
        PCDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      if (Current().IsKeyword("AS")) {
        Advance();
        PCDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      stmt->items.push_back(std::move(item));
      if (Current().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    PCDB_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (Current().IsKeyword("AS")) {
      Advance();
      PCDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Current().kind == TokenKind::kIdentifier &&
               !IsClauseKeyword(Current())) {
      // Bare alias: "FROM city c1".
      ref.alias = Current().text;
      Advance();
    }
    return ref;
  }

  static bool IsClauseKeyword(const Token& token) {
    for (const char* kw :
         {"WHERE", "GROUP", "JOIN", "ON", "AND", "ORDER", "LIMIT",
          "UNION"}) {
      if (token.IsKeyword(kw)) return true;
    }
    return false;
  }

  Status ParseFrom(SelectStatement* stmt) {
    PCDB_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    for (;;) {
      if (Current().kind == TokenKind::kComma) {
        Advance();
        PCDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      if (Current().IsKeyword("JOIN")) {
        Advance();
        PCDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        PCDB_RETURN_NOT_OK(ExpectKeyword("ON"));
        PCDB_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
        if (!pred.rhs_is_column) {
          return Error("JOIN ... ON requires a column = column condition");
        }
        stmt->predicates.push_back(std::move(pred));
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<Predicate> ParsePredicate() {
    Predicate pred;
    PCDB_ASSIGN_OR_RETURN(pred.lhs, ParseColumnRef());
    if (Current().kind != TokenKind::kEquals) {
      return Error("expected = in predicate");
    }
    Advance();
    switch (Current().kind) {
      case TokenKind::kIdentifier: {
        pred.rhs_is_column = true;
        PCDB_ASSIGN_OR_RETURN(pred.rhs_column, ParseColumnRef());
        break;
      }
      case TokenKind::kInteger: {
        PCDB_ASSIGN_OR_RETURN(
            pred.rhs_value, Value::Parse(Current().text, ValueType::kInt64));
        Advance();
        break;
      }
      case TokenKind::kDouble: {
        PCDB_ASSIGN_OR_RETURN(
            pred.rhs_value, Value::Parse(Current().text, ValueType::kDouble));
        Advance();
        break;
      }
      case TokenKind::kString:
        pred.rhs_value = Value(Current().text);
        Advance();
        break;
      default:
        return Error("expected column or literal after =");
    }
    return pred;
  }

  Status ParseWhere(SelectStatement* stmt) {
    for (;;) {
      PCDB_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
      stmt->predicates.push_back(std::move(pred));
      if (!Current().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseGroupBy(SelectStatement* stmt) {
    for (;;) {
      PCDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      stmt->group_by.push_back(std::move(ref));
      if (Current().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseOrderBy(SelectStatement* stmt) {
    for (;;) {
      OrderKey key;
      PCDB_ASSIGN_OR_RETURN(key.column, ParseColumnRef());
      if (Current().IsKeyword("DESC")) {
        key.descending = true;
        Advance();
      } else if (Current().IsKeyword("ASC")) {
        Advance();
      }
      stmt->order_by.push_back(std::move(key));
      if (Current().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  PCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<std::vector<SelectStatement>> ParseQuery(const std::string& sql) {
  PCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseUnionQuery();
}

}  // namespace pcdb
