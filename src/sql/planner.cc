#include "sql/planner.h"

#include <algorithm>

#include "obs/names.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace pcdb {
namespace {

/// One FROM entry during planning: its scan (with pushed-down constant
/// selections) and the schema of that scan.
struct PlanLeaf {
  std::string alias;
  ExprPtr expr;
  Schema schema;
};

/// Whether `ref` resolves inside `leaf`: a qualified reference must match
/// the alias; an unqualified one must resolve in the leaf's schema.
bool RefResolvesIn(const ColumnRef& ref, const PlanLeaf& leaf) {
  if (!ref.table.empty()) {
    return ref.table == leaf.alias && leaf.schema.CanResolve(ref.column);
  }
  return leaf.schema.CanResolve(ref.column);
}

/// Finds the unique leaf a reference belongs to.
Result<size_t> LeafOf(const ColumnRef& ref,
                      const std::vector<PlanLeaf>& leaves) {
  size_t found = leaves.size();
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (RefResolvesIn(ref, leaves[i])) {
      if (found != leaves.size()) {
        return Status::InvalidArgument("ambiguous column reference '" +
                                       ref.ToString() + "'");
      }
      found = i;
    }
  }
  if (found == leaves.size()) {
    return Status::NotFound("cannot resolve column reference '" +
                            ref.ToString() + "'");
  }
  return found;
}

/// Renders a reference for use against qualified plan schemas: qualified
/// references stay as written; unqualified ones are left bare (the
/// schema's suffix matching finds them).
std::string RefName(const ColumnRef& ref) { return ref.ToString(); }

std::string AggOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string arg = item.count_star ? "*" : RefName(item.column);
  return std::string(AggFuncToString(item.func)) + "(" + arg + ")";
}

}  // namespace

namespace {

/// Shared implementation: `order`, when non-null, fixes the left-deep
/// attachment order of the FROM tables; otherwise attachment is greedy
/// (any table connected to the current tree by an unused predicate).
Result<ExprPtr> PlanSelectImpl(const SelectStatement& stmt,
                               const Database& db,
                               const std::vector<size_t>* order) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  if (order != nullptr) {
    if (order->size() != stmt.from.size()) {
      return Status::InvalidArgument("join order size mismatch");
    }
    std::vector<bool> present(stmt.from.size(), false);
    for (size_t i : *order) {
      if (i >= stmt.from.size() || present[i]) {
        return Status::InvalidArgument("join order is not a permutation");
      }
      present[i] = true;
    }
  }
  // Duplicate aliases would make references ambiguous.
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    for (size_t j = i + 1; j < stmt.from.size(); ++j) {
      if (stmt.from[i].EffectiveAlias() == stmt.from[j].EffectiveAlias()) {
        return Status::InvalidArgument(
            "duplicate table alias '" + stmt.from[i].EffectiveAlias() +
            "'; alias self-joined tables");
      }
    }
  }

  // Build the leaves: aliased scans with their schemas.
  std::vector<PlanLeaf> leaves;
  leaves.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    ExprPtr scan = Expr::Scan(ref.table, ref.EffectiveAlias());
    PCDB_ASSIGN_OR_RETURN(Schema schema, scan->OutputSchema(db));
    leaves.push_back(PlanLeaf{ref.EffectiveAlias(), scan, schema});
  }

  // Push constant selections onto their leaf; keep join predicates.
  struct JoinPred {
    ColumnRef lhs;
    ColumnRef rhs;
    size_t lhs_leaf;
    size_t rhs_leaf;
    bool used = false;
  };
  std::vector<JoinPred> joins;
  for (const Predicate& pred : stmt.predicates) {
    PCDB_ASSIGN_OR_RETURN(size_t lhs_leaf, LeafOf(pred.lhs, leaves));
    if (pred.rhs_is_column) {
      PCDB_ASSIGN_OR_RETURN(size_t rhs_leaf, LeafOf(pred.rhs_column, leaves));
      joins.push_back(
          JoinPred{pred.lhs, pred.rhs_column, lhs_leaf, rhs_leaf});
    } else {
      PlanLeaf& leaf = leaves[lhs_leaf];
      leaf.expr =
          Expr::SelectConst(leaf.expr, RefName(pred.lhs), pred.rhs_value);
      PCDB_ASSIGN_OR_RETURN(Schema schema, leaf.expr->OutputSchema(db));
      leaf.schema = std::move(schema);
    }
  }

  // Join-tree construction. Greedy mode: repeatedly attach any leaf
  // connected to the tree by an unused predicate, else cross join.
  // Ordered mode: attach leaves in exactly the given order.
  std::vector<bool> covered(leaves.size(), false);
  const size_t first = order == nullptr ? 0 : (*order)[0];
  covered[first] = true;
  ExprPtr plan = leaves[first].expr;
  size_t covered_count = 1;
  size_t order_cursor = 1;
  // Attaches `outside` using a connecting predicate if one exists.
  auto attach = [&](size_t outside) {
    for (JoinPred& jp : joins) {
      if (jp.used) continue;
      const ColumnRef* inside_ref;
      const ColumnRef* outside_ref;
      if (covered[jp.lhs_leaf] && jp.rhs_leaf == outside) {
        inside_ref = &jp.lhs;
        outside_ref = &jp.rhs;
      } else if (covered[jp.rhs_leaf] && jp.lhs_leaf == outside) {
        inside_ref = &jp.rhs;
        outside_ref = &jp.lhs;
      } else {
        continue;
      }
      plan = Expr::Join(plan, leaves[outside].expr, RefName(*inside_ref),
                        RefName(*outside_ref));
      covered[outside] = true;
      ++covered_count;
      jp.used = true;
      return;
    }
    plan = Expr::CrossJoin(plan, leaves[outside].expr);
    covered[outside] = true;
    ++covered_count;
  };
  while (covered_count < leaves.size()) {
    if (order != nullptr) {
      attach((*order)[order_cursor++]);
      continue;
    }
    // Greedy: prefer a predicate-connected leaf.
    size_t next = leaves.size();
    for (const JoinPred& jp : joins) {
      if (jp.used) continue;
      if (covered[jp.lhs_leaf] && !covered[jp.rhs_leaf]) {
        next = jp.rhs_leaf;
        break;
      }
      if (covered[jp.rhs_leaf] && !covered[jp.lhs_leaf]) {
        next = jp.lhs_leaf;
        break;
      }
    }
    if (next == leaves.size()) {
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (!covered[i]) {
          next = i;
          break;
        }
      }
    }
    attach(next);
  }
  // Leftover predicates (both sides already covered) become selections.
  for (const JoinPred& jp : joins) {
    if (!jp.used) {
      plan = Expr::SelectAttrEq(plan, RefName(jp.lhs), RefName(jp.rhs));
    }
  }

  const bool has_aggregate =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) { return item.is_aggregate; });
  if (!stmt.group_by.empty() || has_aggregate) {
    if (stmt.select_star) {
      return Status::InvalidArgument("SELECT * cannot be combined with "
                                     "aggregation");
    }
    std::vector<std::string> group_names;
    group_names.reserve(stmt.group_by.size());
    for (const ColumnRef& ref : stmt.group_by) {
      group_names.push_back(RefName(ref));
    }
    std::vector<AggSpec> aggs;
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate) continue;
      AggSpec spec;
      spec.func = item.func;
      spec.attr = item.count_star ? "" : RefName(item.column);
      spec.output_name = AggOutputName(item);
      aggs.push_back(std::move(spec));
    }
    // Non-aggregate select items must be grouped.
    for (const SelectItem& item : stmt.items) {
      if (item.is_aggregate) continue;
      bool grouped = false;
      for (const ColumnRef& g : stmt.group_by) {
        if (g.ToString() == item.column.ToString()) {
          grouped = true;
          break;
        }
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column '" + item.column.ToString() +
            "' must appear in GROUP BY or inside an aggregate");
      }
    }
    plan = Expr::Aggregate(plan, std::move(group_names), std::move(aggs));
    // Rearrange to the SELECT list order when it differs from
    // (group columns..., aggregates...).
    std::vector<std::string> out_names;
    out_names.reserve(stmt.items.size());
    for (const SelectItem& item : stmt.items) {
      out_names.push_back(item.is_aggregate ? AggOutputName(item)
                                            : RefName(item.column));
    }
    plan = Expr::Rearrange(plan, std::move(out_names));
  } else if (!stmt.select_star) {
    std::vector<std::string> out_names;
    out_names.reserve(stmt.items.size());
    for (const SelectItem& item : stmt.items) {
      out_names.push_back(RefName(item.column));
    }
    plan = Expr::Rearrange(plan, std::move(out_names));
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::string> keys;
    std::vector<bool> descending;
    keys.reserve(stmt.order_by.size());
    for (const OrderKey& key : stmt.order_by) {
      keys.push_back(RefName(key.column));
      descending.push_back(key.descending);
    }
    plan = Expr::Sort(plan, std::move(keys), std::move(descending));
  }
  if (stmt.has_limit) {
    plan = Expr::Limit(plan, stmt.limit);
  }
  return plan;
}

}  // namespace

Result<ExprPtr> PlanSelect(const SelectStatement& stmt, const Database& db) {
  return PlanSelectImpl(stmt, db, nullptr);
}

Result<ExprPtr> PlanSelectWithOrder(const SelectStatement& stmt,
                                    const Database& db,
                                    const std::vector<size_t>& order) {
  return PlanSelectImpl(stmt, db, &order);
}

Result<ExprPtr> PlanSql(const std::string& sql, const Database& db) {
  PCDB_TRACE_SPAN(span, kSpanSqlPlan);
  PCDB_ASSIGN_OR_RETURN(std::vector<SelectStatement> blocks,
                        ParseQuery(sql));
  ExprPtr plan;
  for (const SelectStatement& stmt : blocks) {
    PCDB_ASSIGN_OR_RETURN(ExprPtr block_plan, PlanSelect(stmt, db));
    plan = plan == nullptr ? std::move(block_plan)
                           : Expr::Union(std::move(plan),
                                         std::move(block_plan));
  }
  // Validate schema compatibility of the union (and the whole plan).
  PCDB_RETURN_NOT_OK(plan->OutputSchema(db).status());
  return plan;
}

}  // namespace pcdb
