#ifndef PCDB_SQL_AST_H_
#define PCDB_SQL_AST_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "relational/expr.h"

namespace pcdb {

/// \brief A possibly qualified column reference, e.g. `W.day` or `day`.
struct ColumnRef {
  std::string table;  // empty if unqualified
  std::string column;

  /// "table.column" or just "column".
  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// \brief One item of a SELECT list: a column or an aggregate call.
struct SelectItem {
  bool is_aggregate = false;
  ColumnRef column;            // the column (or aggregate argument)
  AggFunc func = AggFunc::kCount;
  bool count_star = false;     // COUNT(*)
  std::string alias;           // from AS, may be empty
};

/// \brief A table in the FROM clause, e.g. `city c1` or `Warnings AS W`.
struct TableRef {
  std::string table;
  std::string alias;  // empty → the table name itself is the alias
  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }
};

/// \brief One conjunct of the WHERE clause or a JOIN ... ON condition:
/// either column = column or column = literal.
struct Predicate {
  ColumnRef lhs;
  bool rhs_is_column = false;
  ColumnRef rhs_column;
  Value rhs_value;
};

/// \brief One ORDER BY key.
struct OrderKey {
  ColumnRef column;
  bool descending = false;
};

/// \brief A parsed single-block SELECT statement: the query class of the
/// paper (SPJ with equality, §3.1) plus GROUP BY aggregation
/// (Appendix B), ORDER BY and LIMIT.
struct SelectStatement {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  /// WHERE conjuncts and JOIN ... ON conditions, merged.
  std::vector<Predicate> predicates;
  std::vector<ColumnRef> group_by;
  std::vector<OrderKey> order_by;
  bool has_limit = false;
  size_t limit = 0;
};

}  // namespace pcdb

#endif  // PCDB_SQL_AST_H_
