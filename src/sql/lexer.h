#ifndef PCDB_SQL_LEXER_H_
#define PCDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pcdb {

/// \brief Token kinds of the SQL subset (single-block SELECT).
enum class TokenKind {
  kIdentifier,  // unquoted name; keywords are identifiers matched upper-case
  kInteger,
  kDouble,
  kString,  // '...' literal with '' escaping
  kComma,
  kDot,
  kEquals,
  kLParen,
  kRParen,
  kStar,
  kEnd,
};

/// \brief One lexical token with its source text and position.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier/literal text (unescaped for strings)
  size_t position = 0;  // byte offset in the input, for error messages

  /// True if this is an identifier equal to `keyword` case-insensitively.
  bool IsKeyword(const std::string& keyword) const;
};

/// Tokenizes a SQL string; fails with ParseError on unterminated strings
/// or unexpected characters.
[[nodiscard]] Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace pcdb

#endif  // PCDB_SQL_LEXER_H_
