#include "sql/plan_optimizer.h"

#include <algorithm>
#include <unordered_map>

#include "pattern/annotated_eval.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace pcdb {
namespace {

/// Cardinality and distinct-value estimates for one plan node.
struct NodeEstimate {
  double rows = 0;
  /// Estimated distinct values per (qualified) column name. Only join
  /// and selection attributes are ever queried.
  std::unordered_map<std::string, double> distinct;
};

double LookupDistinct(const NodeEstimate& est, const Schema& schema,
                      const std::string& ref) {
  auto idx = schema.Resolve(ref);
  if (idx.ok()) {
    auto it = est.distinct.find(schema.column(*idx).name);
    if (it != est.distinct.end()) return std::max(1.0, it->second);
  }
  // Unknown column statistics: assume moderately selective.
  return std::max(1.0, est.rows / 10.0);
}

void CapDistincts(NodeEstimate* est) {
  for (auto& [name, d] : est->distinct) {
    d = std::min(d, std::max(1.0, est->rows));
  }
}

/// Classical bottom-up cardinality estimation; `total_rows` accumulates
/// the cost (sum of estimated intermediate sizes).
Result<NodeEstimate> Estimate(const Expr& expr, const Database& db,
                              double* total_rows) {
  NodeEstimate out;
  PCDB_ASSIGN_OR_RETURN(Schema schema, expr.OutputSchema(db));
  switch (expr.kind()) {
    case ExprKind::kScan: {
      PCDB_ASSIGN_OR_RETURN(const Table* table,
                            db.GetTable(expr.table_name()));
      out.rows = static_cast<double>(table->num_rows());
      for (size_t c = 0; c < table->schema().arity(); ++c) {
        out.distinct[schema.column(c).name] =
            static_cast<double>(table->DistinctValues(c).size());
      }
      break;
    }
    case ExprKind::kSelectConst: {
      PCDB_ASSIGN_OR_RETURN(NodeEstimate child,
                            Estimate(*expr.left(), db, total_rows));
      PCDB_ASSIGN_OR_RETURN(Schema in, expr.left()->OutputSchema(db));
      double d = LookupDistinct(child, in, expr.attr());
      out = std::move(child);
      out.rows = out.rows / d;
      auto idx = in.Resolve(expr.attr());
      if (idx.ok()) out.distinct[in.column(*idx).name] = 1;
      CapDistincts(&out);
      break;
    }
    case ExprKind::kSelectAttrEq: {
      PCDB_ASSIGN_OR_RETURN(NodeEstimate child,
                            Estimate(*expr.left(), db, total_rows));
      PCDB_ASSIGN_OR_RETURN(Schema in, expr.left()->OutputSchema(db));
      double d = std::max(LookupDistinct(child, in, expr.attr()),
                          LookupDistinct(child, in, expr.attr2()));
      out = std::move(child);
      out.rows = out.rows / d;
      CapDistincts(&out);
      break;
    }
    case ExprKind::kProjectOut:
    case ExprKind::kRearrange: {
      PCDB_ASSIGN_OR_RETURN(out, Estimate(*expr.left(), db, total_rows));
      break;
    }
    case ExprKind::kJoin: {
      PCDB_ASSIGN_OR_RETURN(NodeEstimate lhs,
                            Estimate(*expr.left(), db, total_rows));
      PCDB_ASSIGN_OR_RETURN(NodeEstimate rhs,
                            Estimate(*expr.right(), db, total_rows));
      out.distinct = std::move(lhs.distinct);
      for (auto& [name, d] : rhs.distinct) out.distinct[name] = d;
      if (expr.attr().empty()) {
        out.rows = lhs.rows * rhs.rows;
      } else {
        PCDB_ASSIGN_OR_RETURN(Schema lschema,
                              expr.left()->OutputSchema(db));
        PCDB_ASSIGN_OR_RETURN(Schema rschema,
                              expr.right()->OutputSchema(db));
        double d = std::max(LookupDistinct(lhs, lschema, expr.attr()),
                            LookupDistinct(rhs, rschema, expr.attr2()));
        out.rows = lhs.rows * rhs.rows / d;
      }
      CapDistincts(&out);
      break;
    }
    case ExprKind::kAggregate: {
      PCDB_ASSIGN_OR_RETURN(NodeEstimate child,
                            Estimate(*expr.left(), db, total_rows));
      PCDB_ASSIGN_OR_RETURN(Schema in, expr.left()->OutputSchema(db));
      double groups = 1;
      for (const std::string& g : expr.attrs()) {
        groups *= LookupDistinct(child, in, g);
      }
      out.rows = std::min(groups, child.rows);
      break;
    }
    case ExprKind::kSort: {
      PCDB_ASSIGN_OR_RETURN(out, Estimate(*expr.left(), db, total_rows));
      break;
    }
    case ExprKind::kLimit: {
      PCDB_ASSIGN_OR_RETURN(out, Estimate(*expr.left(), db, total_rows));
      out.rows = std::min(out.rows, static_cast<double>(expr.limit()));
      CapDistincts(&out);
      break;
    }
    case ExprKind::kUnion: {
      PCDB_ASSIGN_OR_RETURN(NodeEstimate lhs,
                            Estimate(*expr.left(), db, total_rows));
      PCDB_ASSIGN_OR_RETURN(NodeEstimate rhs,
                            Estimate(*expr.right(), db, total_rows));
      out.rows = lhs.rows + rhs.rows;
      out.distinct = std::move(lhs.distinct);
      for (auto& [name, d] : rhs.distinct) {
        auto it = out.distinct.find(name);
        if (it == out.distinct.end()) {
          out.distinct.emplace(name, d);
        } else {
          it->second += d;
        }
      }
      CapDistincts(&out);
      break;
    }
  }
  *total_rows += out.rows;
  return out;
}

}  // namespace

Result<OptimizedPlan> OptimizePlan(const SelectStatement& stmt,
                                   const AnnotatedDatabase& adb,
                                   PlanObjective objective) {
  const size_t n = stmt.from.size();
  if (n == 0) return Status::InvalidArgument("FROM clause is empty");
  if (n > 7) {
    return Status::InvalidArgument(
        "plan enumeration supports at most 7 tables");
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  OptimizedPlan result;
  do {
    PCDB_ASSIGN_OR_RETURN(ExprPtr plan,
                          PlanSelectWithOrder(stmt, adb.database(), order));
    double cost = 0;
    if (objective == PlanObjective::kData) {
      PCDB_RETURN_NOT_OK(
          Estimate(*plan, adb.database(), &cost).status());
    } else {
      size_t patterns = 0;
      PCDB_RETURN_NOT_OK(
          ComputeQueryPatterns(*plan, adb, AnnotatedEvalOptions{}, &patterns)
              .status());
      cost = static_cast<double>(patterns);
    }
    result.candidates.push_back(PlanChoice{std::move(plan), order, cost});
  } while (std::next_permutation(order.begin(), order.end()));

  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.cost < b.cost;
                   });
  result.best = result.candidates.front();
  return result;
}

Result<OptimizedPlan> OptimizeSql(const std::string& sql,
                                  const AnnotatedDatabase& adb,
                                  PlanObjective objective) {
  PCDB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return OptimizePlan(stmt, adb, objective);
}

}  // namespace pcdb
