#ifndef PCDB_SQL_PARSER_H_
#define PCDB_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace pcdb {

/// \brief Parses a single-block SQL SELECT statement.
///
/// Supported grammar (keywords case-insensitive):
///
///   SELECT (* | item (, item)*)
///   FROM table [[AS] alias] (, table [[AS] alias])*
///        (JOIN table [[AS] alias] ON col = col)*
///   [WHERE pred (AND pred)*]
///   [GROUP BY col (, col)*]
///
///   item := col [AS name] | FUNC( col | * ) [AS name]
///   pred := col = col | col = literal
///   col  := ident | ident.ident
///   FUNC := COUNT | SUM | MIN | MAX | AVG
///
/// This captures the paper's query class — SPJ with equality (§3.1) —
/// plus the Appendix B aggregates, including the comma-join style of the
/// Wikipedia experiment queries (§4.2).
[[nodiscard]] Result<SelectStatement> ParseSelect(const std::string& sql);

/// Parses a full query: one or more SELECT blocks combined with
/// UNION ALL. (Deduplicating UNION is not supported — the paper's query
/// class is bag-semantics SPJ.)
[[nodiscard]] Result<std::vector<SelectStatement>> ParseQuery(const std::string& sql);

}  // namespace pcdb

#endif  // PCDB_SQL_PARSER_H_
