#ifndef PCDB_SQL_PLANNER_H_
#define PCDB_SQL_PLANNER_H_

#include <string>

#include "common/result.h"
#include "relational/database.h"
#include "relational/expr.h"
#include "sql/ast.h"

namespace pcdb {

/// \brief Translates a parsed SELECT statement into a relational algebra
/// plan over `db`.
///
/// Planning follows the paper's setup: constant selections are pushed
/// onto their table's scan; column-equality predicates connecting a new
/// table become equijoins (cross joins where no predicate connects);
/// leftover equalities become σ_{A=B} on top; GROUP BY becomes a
/// kAggregate node; a non-star SELECT list becomes a final kRearrange.
/// Every scan is aliased (by its FROM alias or table name), so columns
/// are qualified and self-joins resolve unambiguously.
[[nodiscard]] Result<ExprPtr> PlanSelect(const SelectStatement& stmt, const Database& db);

/// Like PlanSelect, but attaches the FROM tables in exactly the given
/// order (a permutation of indices into stmt.from), building a left-deep
/// join tree; tables not connected by a predicate at their turn are
/// cross-joined. Used by the plan optimizer (plan_optimizer.h) to
/// enumerate join orders.
[[nodiscard]] Result<ExprPtr> PlanSelectWithOrder(const SelectStatement& stmt,
                                    const Database& db,
                                    const std::vector<size_t>& order);

/// Parses and plans in one step.
[[nodiscard]] Result<ExprPtr> PlanSql(const std::string& sql, const Database& db);

}  // namespace pcdb

#endif  // PCDB_SQL_PLANNER_H_
