#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

/// Replay driver for toolchains without libFuzzer (-fsanitize=fuzzer is
/// clang-only): runs every file passed on the command line through the
/// harness entry point once, in order. Sanitizers still fire, so
/// `fuzz_sql corpus/sql/*` under ASan/UBSan is the portable smoke run —
/// tools/ci.sh uses exactly that when clang is absent.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <input-file>...\n", argv[0]);
    return 2;
  }
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "skipping unreadable input: %s\n", argv[i]);
      continue;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::printf("ran %d inputs\n", ran);
  return 0;
}
