#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "dist/partition.h"
#include "fuzz_util.h"
#include "pattern/shard_route.h"
#include "relational/tuple.h"

/// Shard-routing harness: the partition-map codec and the row/pattern
/// routing functions that decide data placement (docs/DISTRIBUTED.md).
///
/// Mode byte 0 — codec: DecodePartitionMap must never crash on
/// arbitrary bytes, and every ACCEPTED payload must re-encode to the
/// identical bytes (the encoding is canonical — sorted names, strictly
/// increasing — so accept implies round-trip byte-identity).
///
/// Mode byte 1 — routing: for an arbitrary synthesized tuple and
/// pattern, the router must place each on exactly one shard in
/// [0, num_shards), deterministically: the same input routes to the
/// same shard on a second call. A row routed to two shards would be
/// double-counted by the merged union; a row routed nowhere would be
/// lost — both break the distributed differential.
namespace {

pcdb::Value TakeValue(pcdb::fuzz::ByteReader* reader) {
  switch (reader->TakeBelow(3)) {
    case 0:
      return pcdb::Value(static_cast<int64_t>(reader->TakeByte()) -
                         (reader->TakeBool() ? 128 : 0));
    case 1:
      return pcdb::Value(static_cast<double>(reader->TakeByte()) / 3.0);
    default: {
      std::string s;
      const size_t len = reader->TakeBelow(6);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + reader->TakeBelow(26)));
      }
      return pcdb::Value(s);
    }
  }
}

void FuzzCodec(std::string_view payload) {
  pcdb::Result<pcdb::PartitionMap> decoded =
      pcdb::DecodePartitionMap(payload);
  if (!decoded.ok()) return;
  // Canonical: accepted bytes survive a decode/encode round trip
  // byte-for-byte.
  const std::string reencoded = pcdb::EncodePartitionMap(*decoded);
  if (reencoded != payload) __builtin_trap();
  pcdb::Result<pcdb::PartitionMap> again =
      pcdb::DecodePartitionMap(reencoded);
  if (!again.ok() || again->num_shards != decoded->num_shards ||
      again->hashed != decoded->hashed) {
    __builtin_trap();
  }
}

void FuzzRouting(pcdb::fuzz::ByteReader* reader) {
  const uint32_t num_shards =
      static_cast<uint32_t>(reader->TakeInRange(1, 16));
  pcdb::PartitionMap map;
  map.num_shards = num_shards;
  map.hashed = {"T"};

  // An arbitrary row of arbitrary arity.
  const size_t arity = reader->TakeInRange(1, 5);
  pcdb::Tuple row;
  for (size_t i = 0; i < arity; ++i) row.push_back(TakeValue(reader));
  const uint32_t shard = pcdb::RouteRow(map, row);
  if (shard >= num_shards) __builtin_trap();
  if (pcdb::RouteRow(map, row) != shard) __builtin_trap();

  // A pattern over the same arity: start from the row's tuple pattern
  // and knock an arbitrary subset of positions out to the wildcard.
  pcdb::Pattern pattern = pcdb::Pattern::FromTuple(row);
  for (size_t i = 0; i < arity; ++i) {
    if (reader->TakeBool()) pattern = pattern.WithWildcard(i);
  }
  const uint32_t pattern_shard = pcdb::RoutePattern(map, pattern);
  if (pattern_shard >= num_shards) __builtin_trap();
  if (pcdb::RoutePattern(map, pattern) != pattern_shard) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pcdb::fuzz::ByteReader reader(data, size);
  if (reader.TakeBool()) {
    FuzzRouting(&reader);
  } else {
    const std::string payload = reader.TakeRemainingString();
    FuzzCodec(payload);
  }
  return 0;
}
