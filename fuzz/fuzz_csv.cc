#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "relational/csv.h"
#include "relational/schema.h"
#include "relational/table.h"

/// RFC-4180 CSV reader harness.
///
/// The first bytes pick a schema (1–6 columns of string/int64/double and
/// whether a header line is expected); the rest is the CSV text. Beyond
/// "no crash", successfully parsed tables must round-trip: serializing
/// with WriteCsvString and re-reading under the same schema reproduces
/// the exact same rows. Doubles are excluded from the round-trip check
/// (formatting may legitimately drop precision); string and int64 cells
/// must survive verbatim — including commas, quotes and embedded
/// newlines in quoted fields.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pcdb::fuzz::ByteReader in(data, size);

  const size_t num_cols = in.TakeInRange(1, 6);
  bool has_double = false;
  std::vector<pcdb::Column> cols;
  cols.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    pcdb::ValueType type = pcdb::ValueType::kString;
    switch (in.TakeBelow(3)) {
      case 0: type = pcdb::ValueType::kString; break;
      case 1: type = pcdb::ValueType::kInt64; break;
      case 2: type = pcdb::ValueType::kDouble; has_double = true; break;
    }
    cols.push_back({"c" + std::to_string(c), type});
  }
  const bool has_header = in.TakeBool();
  const pcdb::Schema schema(std::move(cols));
  const std::string text = in.TakeRemainingString();

  auto table = pcdb::ReadCsvString(text, schema, has_header);
  if (!table.ok() || has_double) return 0;

  const std::string rewritten = pcdb::WriteCsvString(*table);
  auto reread = pcdb::ReadCsvString(rewritten, schema, /*has_header=*/true);
  if (!reread.ok()) {
    pcdb::fuzz::Violation("WriteCsvString output must re-parse",
                          text + "\n--- rewritten ---\n" + rewritten);
  }
  if (reread->num_rows() != table->num_rows()) {
    pcdb::fuzz::Violation("CSV round-trip changed the row count",
                          text + "\n--- rewritten ---\n" + rewritten);
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (!(table->row(r) == reread->row(r))) {
      pcdb::fuzz::Violation("CSV round-trip changed row " + std::to_string(r),
                            text + "\n--- rewritten ---\n" + rewritten);
    }
  }
  return 0;
}
