#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "server/answer_cache.h"

/// Cache-key normalization harness for AnswerCache::NormalizeSql.
///
/// The normalizer collapses incidental whitespace so that trivially
/// reformatted queries share a cache entry, but must treat '...'
/// literals as opaque value bytes: whitespace inside a literal is part
/// of the query's meaning ('a  b' != 'a b'), and '' is the lexer's
/// escape for a quote. Beyond "no crash", four properties pin that
/// contract on arbitrary input:
///
///  1. idempotence — normalizing a normalized key is a no-op, so keys
///     can be re-normalized anywhere without drifting;
///  2. the key never grows — normalization only removes bytes;
///  3. literal contents survive byte-for-byte, in order;
///  4. whitespace-equivalence — reshaping whitespace runs outside
///     literals (and adding leading/trailing ones) maps to the same
///     key, which is the whole point of normalizing.
namespace {

/// Splits the query by the lexer's literal rule: even indices hold text
/// outside '...' literals, odd indices hold literal interiors (with the
/// quotes and the '' escapes kept verbatim).
std::vector<std::string> SplitByLiterals(const std::string& sql) {
  std::vector<std::string> parts(1);
  bool in_literal = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (!in_literal) {
      if (c == '\'') {
        in_literal = true;
        parts.emplace_back(1, c);
      } else {
        parts.back().push_back(c);
      }
      continue;
    }
    parts.back().push_back(c);
    if (c == '\'') {
      if (i + 1 < sql.size() && sql[i + 1] == '\'') {
        parts.back().push_back('\'');
        ++i;
      } else {
        in_literal = false;
        parts.emplace_back();
      }
    }
  }
  return parts;
}

std::string LiteralsOnly(const std::string& sql) {
  std::string joined;
  const std::vector<std::string> parts = SplitByLiterals(sql);
  for (size_t i = 1; i < parts.size(); i += 2) joined += parts[i];
  return joined;
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Reshapes the query's incidental whitespace: outside literals every
/// whitespace run becomes "\t \n" and extra runs are appended at both
/// ends; literal interiors pass through untouched.
std::string ReshapeWhitespace(const std::string& sql) {
  const std::vector<std::string> parts = SplitByLiterals(sql);
  std::string out = "\n\t";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i % 2 == 1) {
      out += parts[i];
      continue;
    }
    bool in_run = false;
    for (char c : parts[i]) {
      if (IsSpace(c)) {
        if (!in_run) out += "\t \n";
        in_run = true;
      } else {
        out.push_back(c);
        in_run = false;
      }
    }
  }
  // Trailing whitespace is only incidental while no literal is open.
  if (parts.size() % 2 == 1) out += " \t";
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pcdb::fuzz::ByteReader in(data, size);
  const std::string sql = in.TakeRemainingString();

  const std::string key = pcdb::AnswerCache::NormalizeSql(sql);

  if (pcdb::AnswerCache::NormalizeSql(key) != key) {
    pcdb::fuzz::Violation("NormalizeSql must be idempotent",
                          sql + "\n--- key ---\n" + key);
  }
  if (key.size() > sql.size()) {
    pcdb::fuzz::Violation("NormalizeSql must never grow the key", sql);
  }
  if (LiteralsOnly(key) != LiteralsOnly(sql)) {
    pcdb::fuzz::Violation(
        "NormalizeSql must keep '...' literal bytes verbatim",
        sql + "\n--- key ---\n" + key);
  }
  if (pcdb::AnswerCache::NormalizeSql(ReshapeWhitespace(sql)) != key) {
    pcdb::fuzz::Violation(
        "whitespace outside literals must not affect the key",
        sql + "\n--- reshaped ---\n" + ReshapeWhitespace(sql));
  }
  return 0;
}
