#ifndef PCDB_FUZZ_FUZZ_UTIL_H_
#define PCDB_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

/// \file
/// Shared plumbing for the libFuzzer harnesses. Each harness defines
/// LLVMFuzzerTestOneInput; under clang the targets link -fsanitize=fuzzer,
/// elsewhere standalone_main.cc replays corpus files through the same
/// entry point so smoke runs work with any toolchain (see
/// docs/STATIC_ANALYSIS.md).

namespace pcdb {
namespace fuzz {

/// Sequential consumer over the fuzz input, FuzzedDataProvider-style:
/// every Take* call eats bytes from the front and degrades to zeros once
/// the input is exhausted, so any byte string maps to a deterministic,
/// structurally valid test case.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  size_t remaining() const { return pos_ >= size_ ? 0 : size_ - pos_; }

  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  /// A value in [0, bound); bound 0 yields 0.
  size_t TakeBelow(size_t bound) {
    if (bound == 0) return 0;
    // Two bytes of entropy are plenty for the small bounds we use.
    size_t v = TakeByte();
    v = (v << 8) | TakeByte();
    return v % bound;
  }

  /// A value in [lo, hi] (inclusive); requires lo <= hi.
  size_t TakeInRange(size_t lo, size_t hi) {
    return lo + TakeBelow(hi - lo + 1);
  }

  bool TakeBool() { return (TakeByte() & 1) != 0; }

  /// The rest of the input as a string (for text-format harnesses).
  std::string TakeRemainingString() {
    std::string s(reinterpret_cast<const char*>(data_ + pos_), remaining());
    pos_ = size_;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Prints a message and aborts — the harness-side "property violated"
/// signal that libFuzzer and the standalone driver both report as a
/// crash with the offending input preserved.
[[noreturn]] inline void Violation(const std::string& property,
                                   const std::string& detail) {
  std::fprintf(stderr, "FUZZ PROPERTY VIOLATED: %s\n%s\n", property.c_str(),
               detail.c_str());
  std::abort();
}

}  // namespace fuzz
}  // namespace pcdb

#endif  // PCDB_FUZZ_FUZZ_UTIL_H_
