#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/value.h"
#include "fuzz_util.h"
#include "pattern/algebra.h"
#include "pattern/minimize.h"
#include "pattern/pattern.h"

/// Differential pattern-algebra harness.
///
/// The input bytes decode into two random pattern sets and a short SPJ
/// operator pipeline (select-const, select-attr-eq, project-out, join,
/// union — the §4.1 algebra). The soundness/completeness theorems make
/// every evaluation route an oracle for the others:
///   * Minimize must produce SetEquals-identical results across
///     approaches 1–3 × index structures A–D (§4.4) and serial vs
///     sharded ParallelMinimize;
///   * PatternJoin must agree between the literal cross-product-select
///     definition and the partitioned hash join, serial and pooled;
///   * minimization output must actually be minimal (IsMinimal).
namespace {

using pcdb::MinimizeApproach;
using pcdb::Pattern;
using pcdb::PatternIndexKind;
using pcdb::PatternSet;
using pcdb::Value;
using pcdb::fuzz::ByteReader;
using pcdb::fuzz::Violation;

constexpr MinimizeApproach kApproaches[] = {
    MinimizeApproach::kAllAtOnce,
    MinimizeApproach::kIncremental,
    MinimizeApproach::kSortedIncremental,
};
constexpr PatternIndexKind kKinds[] = {
    PatternIndexKind::kLinearList,
    PatternIndexKind::kHashTable,
    PatternIndexKind::kPathIndex,
    PatternIndexKind::kDiscriminationTree,
};

/// A pattern of `arity` cells over a 3-value domain, wildcard-biased so
/// subsumption chains actually occur.
Pattern TakePattern(ByteReader* in, size_t arity) {
  std::vector<Pattern::Cell> cells;
  cells.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    const size_t pick = in->TakeBelow(6);
    if (pick < 3) {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value("v" + std::to_string(pick - 3)));
    }
  }
  return Pattern(std::move(cells));
}

PatternSet TakePatternSet(ByteReader* in, size_t arity, size_t max_patterns) {
  PatternSet out;
  const size_t n = in->TakeBelow(max_patterns + 1);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!out.empty() && in->TakeBelow(5) == 0) {
      out.Add(out[in->TakeBelow(out.size())]);  // duplicate on purpose
    } else {
      out.Add(TakePattern(in, arity));
    }
  }
  return out;
}

/// Checks the full method matrix against the D1 reference result.
void CheckMinimizeMatrix(const PatternSet& input, const std::string& trail) {
  const PatternSet reference =
      Minimize(input, MinimizeApproach::kAllAtOnce,
               PatternIndexKind::kDiscriminationTree);
  if (!IsMinimal(reference)) {
    Violation("Minimize(D1) produced a non-minimal set", trail);
  }
  for (MinimizeApproach approach : kApproaches) {
    for (PatternIndexKind kind : kKinds) {
      const PatternSet serial = Minimize(input, approach, kind);
      if (!serial.SetEquals(reference)) {
        Violation("Minimize diverged for " +
                      pcdb::MinimizeMethodName(kind, approach),
                  trail + "\ninput:\n" + input.ToString());
      }
      const PatternSet parallel =
          ParallelMinimize(input, approach, kind, /*num_threads=*/4);
      if (!parallel.SetEquals(reference)) {
        Violation("ParallelMinimize diverged for " +
                      pcdb::MinimizeMethodName(kind, approach),
                  trail + "\ninput:\n" + input.ToString());
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in(data, size);

  const size_t arity = in.TakeInRange(1, 5);
  PatternSet current = TakePatternSet(&in, arity, 24);
  size_t current_arity = arity;
  std::string trail = "arity=" + std::to_string(arity);

  // A short pipeline of algebra operators over `current`.
  const size_t num_ops = in.TakeBelow(4);
  for (size_t step = 0; step < num_ops; ++step) {
    switch (in.TakeBelow(5)) {
      case 0: {
        const size_t attr = in.TakeBelow(current_arity);
        current = PatternSelectConst(current, attr,
                                     Value("v" + std::to_string(
                                                     in.TakeBelow(3))));
        trail += " selectconst@" + std::to_string(attr);
        break;
      }
      case 1: {
        if (current_arity < 2) break;
        const size_t a = in.TakeBelow(current_arity);
        size_t b = in.TakeBelow(current_arity);
        if (a == b) b = (b + 1) % current_arity;
        current = PatternSelectAttrEq(current, a, b);
        trail += " selecteq@" + std::to_string(a) + "," + std::to_string(b);
        break;
      }
      case 2: {
        if (current_arity < 2) break;
        const size_t attr = in.TakeBelow(current_arity);
        current = PatternProjectOut(current, attr);
        --current_arity;
        trail += " projectout@" + std::to_string(attr);
        break;
      }
      case 3: {
        const size_t right_arity = in.TakeInRange(1, 3);
        const PatternSet right = TakePatternSet(&in, right_arity, 12);
        const size_t a = in.TakeBelow(current_arity);
        const size_t b = in.TakeBelow(right_arity);
        // Differential join: literal definition vs partitioned, serial
        // vs pooled. Equivalence holds up to subsumption, so compare
        // minimized sets.
        const PatternSet cross =
            PatternJoin(current, a, right, b,
                        pcdb::PatternJoinStrategy::kCrossProductSelect);
        const PatternSet part =
            PatternJoin(current, a, right, b,
                        pcdb::PatternJoinStrategy::kPartitionedHashJoin);
        pcdb::ThreadPool pool(4);
        const PatternSet pooled =
            PatternJoin(current, a, right, b,
                        pcdb::PatternJoinStrategy::kPartitionedHashJoin,
                        &pool);
        if (!Minimize(part).SetEquals(Minimize(cross))) {
          Violation("partitioned join diverged from cross-product join",
                    trail + "\nleft:\n" + current.ToString() + "right:\n" +
                        right.ToString());
        }
        if (!pooled.SetEquals(part)) {
          Violation("pooled join diverged from serial partitioned join",
                    trail + "\nleft:\n" + current.ToString() + "right:\n" +
                        right.ToString());
        }
        current = part;
        current_arity += right_arity;
        trail += " join@" + std::to_string(a) + "," + std::to_string(b);
        break;
      }
      case 4: {
        const PatternSet right = TakePatternSet(&in, current_arity, 12);
        current = PatternUnion(current, right);
        trail += " union";
        break;
      }
    }
  }

  CheckMinimizeMatrix(current, trail);
  return 0;
}
