#include <cstddef>
#include <cstdint>
#include <string>

#include "durability/wal.h"
#include "fuzz_util.h"

/// WAL record codec harness (docs/DURABILITY.md §2).
///
/// The first byte picks a mode:
///  - mode 0 runs the recovery scan over the rest: decode records
///    front-to-back exactly like ReplayWal until the bytes end or a
///    torn/corrupt tail stops the scan. Arbitrary bytes must never
///    crash the decoder (recovery reads whatever a crash left on disk),
///    and every record it does accept must re-encode to the exact bytes
///    it was decoded from — the encoding is canonical, which is what
///    lets replay trust `consumed` as the next record boundary.
///  - mode 1 builds a record from fuzz-chosen fields and checks the
///    encode/decode round trip, then that any proper prefix reads as
///    torn and any single-byte flip is never accepted as a record.
namespace {

uint64_t TakeU64(pcdb::fuzz::ByteReader* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in->TakeByte();
  return v;
}

void CheckRecoveryScan(const std::string& bytes) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t offset = 0;
  while (offset < bytes.size()) {
    pcdb::WalDecodeResult decoded =
        pcdb::DecodeWalRecord(data + offset, bytes.size() - offset);
    if (decoded.outcome != pcdb::WalDecodeOutcome::kRecord) {
      if (decoded.detail.empty()) {
        pcdb::fuzz::Violation("torn/corrupt outcomes must carry a detail",
                              std::to_string(offset));
      }
      return;  // replay stops here, by design
    }
    if (decoded.consumed == 0 ||
        decoded.consumed > bytes.size() - offset) {
      pcdb::fuzz::Violation("consumed must advance and stay in bounds",
                            std::to_string(decoded.consumed));
    }
    std::string reencoded;
    pcdb::AppendWalRecord(&reencoded, decoded.record);
    if (reencoded != bytes.substr(offset, decoded.consumed)) {
      pcdb::fuzz::Violation("accepted records must re-encode canonically",
                            bytes.substr(offset, decoded.consumed));
    }
    offset += decoded.consumed;
  }
}

void CheckStructuredRoundTrip(pcdb::fuzz::ByteReader* in) {
  pcdb::WalRecord record;
  record.lsn = TakeU64(in);
  record.type = in->TakeBool() ? pcdb::WalRecordType::kPunctuate
                               : pcdb::WalRecordType::kIngest;
  record.writer_id = TakeU64(in);
  record.seq = TakeU64(in);
  const size_t tenant_len = in->TakeBelow(64);
  for (size_t i = 0; i < tenant_len; ++i) {
    record.tenant.push_back(static_cast<char>(in->TakeByte()));
  }
  const size_t flip_at_raw = in->TakeBelow(1 << 12);
  const size_t cut_at_raw = in->TakeBelow(1 << 12);
  record.payload = in->TakeRemainingString();

  std::string bytes;
  pcdb::AppendWalRecord(&bytes, record);
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());

  pcdb::WalDecodeResult decoded = pcdb::DecodeWalRecord(data, bytes.size());
  if (decoded.outcome != pcdb::WalDecodeOutcome::kRecord ||
      decoded.consumed != bytes.size()) {
    pcdb::fuzz::Violation("every encoded record must decode", decoded.detail);
  }
  if (decoded.record.lsn != record.lsn ||
      decoded.record.type != record.type ||
      decoded.record.tenant != record.tenant ||
      decoded.record.writer_id != record.writer_id ||
      decoded.record.seq != record.seq ||
      decoded.record.payload != record.payload) {
    pcdb::fuzz::Violation("round trip changed a record field", "");
  }

  // Every proper prefix is a torn tail — never corrupt (recovery
  // truncates torn tails silently but refuses corrupt ones).
  const size_t cut_at = cut_at_raw % bytes.size();
  pcdb::WalDecodeResult truncated = pcdb::DecodeWalRecord(data, cut_at);
  if (truncated.outcome != pcdb::WalDecodeOutcome::kTorn) {
    pcdb::fuzz::Violation("a proper prefix must read as torn",
                          "cut=" + std::to_string(cut_at));
  }

  // A single flipped byte must never pass: either the length prefix now
  // disagrees with the buffer (torn/corrupt) or the CRC catches it.
  std::string bent = bytes;
  const size_t flip_at = flip_at_raw % bent.size();
  bent[flip_at] = static_cast<char>(bent[flip_at] ^ 0x5A);
  pcdb::WalDecodeResult flipped = pcdb::DecodeWalRecord(
      reinterpret_cast<const uint8_t*>(bent.data()), bent.size());
  if (flipped.outcome == pcdb::WalDecodeOutcome::kRecord) {
    pcdb::fuzz::Violation("a flipped byte must never decode as valid",
                          "flip=" + std::to_string(flip_at));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pcdb::fuzz::ByteReader in(data, size);
  const size_t mode = in.TakeByte() % 2;  // one byte: seeds stay readable
  if (mode == 1) {
    CheckStructuredRoundTrip(&in);
    return 0;
  }
  CheckRecoveryScan(in.TakeRemainingString());
  return 0;
}
