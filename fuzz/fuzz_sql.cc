#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"

/// SQL front-end harness: arbitrary bytes through the lexer and parser.
///
/// Properties checked beyond "no crash / no sanitizer report":
///   * the lexer either fails with a Status or returns a token stream
///     that ends in kEnd with monotonically non-decreasing positions
///     inside the input;
///   * the parser never succeeds on input the lexer rejected (the parser
///     runs the lexer first, so a lexer error must propagate).
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string sql(reinterpret_cast<const char*>(data), size);

  auto tokens = pcdb::Tokenize(sql);
  if (tokens.ok()) {
    size_t prev = 0;
    for (const pcdb::Token& t : *tokens) {
      if (t.position < prev || t.position > sql.size()) {
        pcdb::fuzz::Violation("token positions ordered and in bounds", sql);
      }
      prev = t.position;
    }
    if (tokens->empty() || tokens->back().kind != pcdb::TokenKind::kEnd) {
      pcdb::fuzz::Violation("token stream terminated by kEnd", sql);
    }
  }

  auto parsed = pcdb::ParseQuery(sql);
  if (parsed.ok() && !tokens.ok()) {
    pcdb::fuzz::Violation("parse succeeded on lexer-rejected input", sql);
  }
  return 0;
}
