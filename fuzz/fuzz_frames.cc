#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "server/protocol.h"

/// Wire-frame and write-path payload harness.
///
/// The first byte picks a mode:
///  - mode 0 streams the rest through FrameReader in fuzz-chosen chunk
///    sizes (the framing layer must reject garbage with a Status, never
///    crash, and byte-at-a-time delivery must behave like one big Feed);
///  - modes 1-3 hand the rest directly to the INGEST / PUNCTUATE /
///    INGEST_RESULT payload decoders.
///
/// Beyond "no crash": any payload the decoder accepts must survive an
/// encode/decode round trip, and the re-encoding must be canonical
/// (encoding the re-decoded value reproduces the same bytes). That
/// pins down both directions of the codec with one property.
namespace {

void CheckIngestRoundTrip(std::string_view payload) {
  auto decoded = pcdb::DecodeIngestPayload(payload);
  if (!decoded.ok()) return;
  const std::string encoded = pcdb::EncodeIngestPayload(*decoded);
  auto redecoded = pcdb::DecodeIngestPayload(encoded);
  if (!redecoded.ok()) {
    pcdb::fuzz::Violation("EncodeIngestPayload output must re-decode",
                          redecoded.status().ToString());
  }
  if (pcdb::EncodeIngestPayload(*redecoded) != encoded) {
    pcdb::fuzz::Violation("ingest encode/decode must be canonical",
                          std::string(payload));
  }
}

void CheckPunctuateRoundTrip(std::string_view payload) {
  auto decoded = pcdb::DecodePunctuatePayload(payload);
  if (!decoded.ok()) return;
  const std::string encoded = pcdb::EncodePunctuatePayload(*decoded);
  auto redecoded = pcdb::DecodePunctuatePayload(encoded);
  if (!redecoded.ok()) {
    pcdb::fuzz::Violation("EncodePunctuatePayload output must re-decode",
                          redecoded.status().ToString());
  }
  if (redecoded->tenant != decoded->tenant ||
      redecoded->table != decoded->table ||
      redecoded->patterns != decoded->patterns) {
    pcdb::fuzz::Violation("punctuate round trip changed the request",
                          std::string(payload));
  }
}

void CheckIngestResultRoundTrip(std::string_view payload) {
  auto decoded = pcdb::DecodeIngestResultPayload(payload);
  if (!decoded.ok()) return;
  const std::string encoded = pcdb::EncodeIngestResultPayload(*decoded);
  auto redecoded = pcdb::DecodeIngestResultPayload(encoded);
  if (!redecoded.ok() ||
      pcdb::EncodeIngestResultPayload(*redecoded) != encoded) {
    pcdb::fuzz::Violation("ingest result round trip broke",
                          std::string(payload));
  }
}

void CheckPayload(const pcdb::Frame& frame) {
  switch (frame.type) {
    case pcdb::FrameType::kIngest:
      CheckIngestRoundTrip(frame.payload);
      break;
    case pcdb::FrameType::kPunctuate:
      CheckPunctuateRoundTrip(frame.payload);
      break;
    case pcdb::FrameType::kIngestResult:
      CheckIngestResultRoundTrip(frame.payload);
      break;
    default:
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pcdb::fuzz::ByteReader in(data, size);
  const size_t mode = in.TakeByte() % 4;  // one byte: seeds stay readable
  const std::string bytes = in.TakeRemainingString();

  if (mode == 1) {
    CheckIngestRoundTrip(bytes);
    return 0;
  }
  if (mode == 2) {
    CheckPunctuateRoundTrip(bytes);
    return 0;
  }
  if (mode == 3) {
    CheckIngestResultRoundTrip(bytes);
    return 0;
  }

  // Mode 0: the framing layer, fed in two different chunkings; both
  // must produce the same frame sequence (or the same first error).
  pcdb::FrameReader whole;
  whole.Feed(bytes.data(), bytes.size());
  std::string whole_log;
  for (;;) {
    pcdb::Frame frame;
    auto complete = whole.Next(&frame);
    if (!complete.ok()) {
      whole_log += "error:" + std::to_string(
                       static_cast<int>(complete.status().code()));
      break;
    }
    if (!*complete) break;
    whole_log += "frame:" + std::to_string(static_cast<int>(frame.type)) +
                 "/" + std::to_string(frame.payload.size()) + ";";
    CheckPayload(frame);
  }

  pcdb::FrameReader chunked;
  std::string chunked_log;
  size_t offset = 0;
  for (;;) {
    pcdb::Frame frame;
    auto complete = chunked.Next(&frame);
    if (!complete.ok()) {
      chunked_log += "error:" + std::to_string(
                         static_cast<int>(complete.status().code()));
      break;
    }
    if (*complete) {
      chunked_log += "frame:" +
                     std::to_string(static_cast<int>(frame.type)) + "/" +
                     std::to_string(frame.payload.size()) + ";";
      continue;
    }
    if (offset >= bytes.size()) break;
    const size_t chunk =
        std::min<size_t>(bytes.size() - offset, 1 + offset % 7);
    chunked.Feed(bytes.data() + offset, chunk);
    offset += chunk;
  }

  if (whole_log != chunked_log) {
    pcdb::fuzz::Violation("frame stream must be chunking-invariant",
                          whole_log + "\n--- chunked ---\n" + chunked_log);
  }
  return 0;
}
