#!/usr/bin/env python3
"""pcdb-analyze: run the project's checker-framework static analysis.

    python3 tools/analyze/pcdb_analyze.py [--root REPO]
        [--checker NAME]... [--format text|json|sarif] [--output FILE]
        [--list-checkers]

Exit status: 0 clean, 1 findings, 2 usage error.

The analysis model, checker registry, and suppression syntax are
documented in docs/STATIC_ANALYSIS.md and tools/analyze/model.py.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from analyze import framework  # noqa: E402
from analyze import checkers  # noqa: E402,F401  (populates the registry)
from analyze import model  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="pcdb-analyze", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: two levels above this script)")
    parser.add_argument(
        "--checker", action="append", metavar="NAME",
        help="run only this checker (repeatable; default: all)")
    parser.add_argument(
        "--format", choices=sorted(framework.FORMATS), default="text")
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report here instead of stdout")
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print registered checkers and exit")
    args = parser.parse_args(argv)

    if args.list_checkers:
        width = max(len(n) for n in framework.CHECKERS)
        for name in sorted(framework.CHECKERS):
            print(f"{name:<{width}}  {framework.CHECKERS[name][1]}")
        return 0

    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent.parent)
    if not root.is_dir():
        print(f"pcdb-analyze: no such root: {root}", file=sys.stderr)
        return 2

    repo = model.Repo(root)
    try:
        findings, stats = framework.run(repo, args.checker)
    except KeyError as err:
        print(f"pcdb-analyze: {err.args[0]}", file=sys.stderr)
        return 2

    report = framework.FORMATS[args.format](findings, stats)
    if args.output:
        pathlib.Path(args.output).write_text(report, encoding="utf-8")
        # A one-line verdict still lands on stdout so CI logs are
        # self-explanatory even when the report goes to a file.
        print(f"pcdb-analyze: {len(findings)} finding(s), report "
              f"written to {args.output}")
    else:
        sys.stdout.write(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
