"""Source model shared by all pcdb-analyze checkers.

The model is deliberately lexical, not syntactic: a real C++ frontend is
out of scope for a stdlib-only tool, and every invariant the checkers
enforce is visible at the token level once comments and string literals
are classified correctly. Each file is loaded once into a SourceFile
carrying three views of every line:

  raw   the text exactly as on disk (suppression comments live here)
  code  comment text blanked, string literals intact (checkers that
        match site strings, e.g. PCDB_FAILPOINT("csv.read"), use this)
  pure  comment text AND string/char literal contents blanked, quotes
        kept (checkers that reason about code shape use this so a
        pattern inside a log message can never fire)

Blanking preserves length and line structure, so column and line
numbers in findings always refer to the file on disk.

Suppressions
------------
A finding is suppressed by an inline comment with a mandatory
justification:

    // pcdb-analyze: allow(<checker>): <why>
    #  pcdb-analyze: allow(<checker>): <why>     (shell / python)

A trailing comment covers its own line; a comment alone on a line
covers the next line. An allow() without a justification, naming an
unknown checker, or matching no finding is itself reported (checker
name "suppression"), so the suppression inventory can never rot.
"""

import pathlib
import re

CXX_SUFFIXES = {".h", ".cc", ".cpp"}
TEXT_SUFFIXES = CXX_SUFFIXES | {".py", ".sh", ".md"}

# Directories scanned relative to the root. docs/ rides along because
# failpoint-drift cross-checks docs/ROBUSTNESS.md against the code.
SCAN_DIRS = ("src", "tools", "tests", "fuzz", "bench", "examples", "docs")

# Subtrees never scanned: golden-fixture mini-repos contain deliberate
# violations and are analyzed only via an explicit --root.
EXCLUDED_PARTS = {"fixtures", "build", "__pycache__", "corpus"}

SUPPRESS_RE = re.compile(
    r"(?://|#)\s*pcdb-analyze:\s*allow\(([A-Za-z0-9_-]+)\)"
    r"(?::\s*(\S.*))?\s*$")


class Suppression:
    """One allow() comment: which checker, where, and why."""

    def __init__(self, checker, line, own_line, justification):
        self.checker = checker
        self.line = line            # 1-based line the comment sits on
        self.own_line = own_line    # True -> covers line + 1, else line
        self.justification = justification
        self.used = False

    @property
    def covers(self):
        return self.line + 1 if self.own_line else self.line


def _strip_cpp(text):
    """Returns (code, pure) for C++ text; both same length as text."""
    code = []
    pure = []
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHAR, RAW = range(6)
    state = NORMAL
    raw_close = ""
    while i < n:
        c = text[i]
        if state == NORMAL:
            if text.startswith("//", i):
                state = LINE
                code.append("  ")
                pure.append("  ")
                i += 2
            elif text.startswith("/*", i):
                state = BLOCK
                code.append("  ")
                pure.append("  ")
                i += 2
            elif text.startswith('R"', i):
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    state = RAW
                    raw_close = ")" + m.group(1) + '"'
                    skip = len(m.group(0))
                    code.append(text[i:i + skip])
                    pure.append('R"' + " " * (skip - 3) + "(")
                    i += skip
                else:
                    code.append(c)
                    pure.append(c)
                    i += 1
            elif c == '"':
                state = STR
                code.append(c)
                pure.append(c)
                i += 1
            elif c == "'" and not (i > 0 and (text[i - 1].isalnum()
                                              or text[i - 1] == "_")):
                # Apostrophes as digit separators (1'000'000) are
                # preceded by an alnum; real char literals are not.
                state = CHAR
                code.append(c)
                pure.append(c)
                i += 1
            else:
                code.append(c)
                pure.append(c)
                i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                code.append(c)
                pure.append(c)
            else:
                code.append(" ")
                pure.append(" ")
            i += 1
        elif state == BLOCK:
            if text.startswith("*/", i):
                state = NORMAL
                code.append("  ")
                pure.append("  ")
                i += 2
            else:
                code.append(c if c == "\n" else " ")
                pure.append(c if c == "\n" else " ")
                i += 1
        elif state in (STR, CHAR):
            quote = '"' if state == STR else "'"
            if c == "\\" and i + 1 < n:
                code.append(text[i:i + 2])
                pure.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                code.append(c)
                pure.append(c)
                i += 1
            else:
                code.append(c)
                pure.append(c if c == "\n" else " ")
                i += 1
        else:  # RAW
            if text.startswith(raw_close, i):
                skip = len(raw_close)
                code.append(text[i:i + skip])
                pure.append(" " * (skip - 1) + '"')
                state = NORMAL
                i += skip
            else:
                code.append(c)
                pure.append(c if c == "\n" else " ")
                i += 1
    return "".join(code), "".join(pure)


def _strip_hash(text):
    """Comment-stripped view for '#'-comment languages (sh, py).

    Good enough for the cross-file invariants that reach into ci.sh:
    a '#' inside a quoted string is rare there and never load-bearing.
    pcdb-analyze suppression comments are read from the raw view, so
    stripping them here is harmless.
    """
    out = []
    for line in text.split("\n"):
        idx = line.find("#")
        if idx >= 0 and not line.lstrip().startswith("#!"):
            line = line[:idx] + " " * (len(line) - idx)
        out.append(line)
    return "\n".join(out)


class SourceFile:
    def __init__(self, rel, text):
        self.rel = rel
        self.text = text
        self.lines = text.split("\n")
        suffix = pathlib.PurePosixPath(rel).suffix
        self.is_cpp = suffix in CXX_SUFFIXES
        if self.is_cpp:
            code, pure = _strip_cpp(text)
        elif suffix in (".py", ".sh"):
            code = _strip_hash(text)
            pure = code
        else:  # markdown and anything else: no comment syntax
            code = text
            pure = text
        self.code = code
        self.pure = pure
        self.code_lines = code.split("\n")
        self.pure_lines = pure.split("\n")
        # Markdown has no comment syntax to carry a real suppression;
        # allow() lines there are documentation examples, not inventory.
        self.suppressions = ([] if suffix == ".md"
                             else self._parse_suppressions())

    def _parse_suppressions(self):
        sups = []
        for lineno, line in enumerate(self.lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            before = line[:m.start()].strip()
            own_line = before == "" or before in ("//", "#")
            sups.append(Suppression(
                checker=m.group(1), line=lineno, own_line=own_line,
                justification=(m.group(2) or "").strip()))
        return sups


class Repo:
    """All scanned files under a root, loaded lazily and cached."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self._files = None
        self._by_rel = {}

    def get(self, rel):
        """The SourceFile at `rel`, loading on demand; None if absent."""
        if rel in self._by_rel:
            return self._by_rel[rel]
        path = self.root / rel
        sf = None
        if path.is_file():
            sf = SourceFile(rel, path.read_text(encoding="utf-8",
                                                errors="replace"))
        self._by_rel[rel] = sf
        return sf

    def files(self):
        if self._files is None:
            self._files = []
            for subdir in SCAN_DIRS:
                base = self.root / subdir
                if not base.is_dir():
                    continue
                for path in sorted(base.rglob("*")):
                    if not path.is_file():
                        continue
                    if path.suffix not in TEXT_SUFFIXES:
                        continue
                    rel_parts = path.relative_to(self.root).parts
                    if EXCLUDED_PARTS.intersection(rel_parts):
                        continue
                    rel = path.relative_to(self.root).as_posix()
                    self._files.append(self.get(rel))
        return self._files

    def cpp_files(self):
        return [f for f in self.files() if f.is_cpp]

    def src_cpp_files(self):
        return [f for f in self.cpp_files() if f.rel.startswith("src/")]

    def src_headers(self):
        return [f for f in self.src_cpp_files() if f.rel.endswith(".h")]
