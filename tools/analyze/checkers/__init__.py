"""Checker modules; importing this package populates the registry."""

from . import legacy  # noqa: F401
from . import status  # noqa: F401
from . import locks  # noqa: F401
from . import protocol  # noqa: F401
from . import failpoints  # noqa: F401
from . import obs  # noqa: F401
from . import blocking  # noqa: F401
from . import dist  # noqa: F401
