"""protocol-consistency: the wire protocol has no half-wired frames.

Ground truth is the FrameType enum in src/server/protocol.h. For every
enumerator the checker requires:

  - a codec arm in src/server/protocol.cc (the frame can be classified
    and framed);
  - client handling in src/server/client.cc (a frame the server can
    send that the client would treat as stream corruption is a bug
    waiting for a version skew);
  - coordinator handling in src/dist/coordinator.cc for every Shard*
    enumerator (the SHARD_* opcodes exist for the distributed front
    end; a coordinator that cannot speak one of them would strand the
    fleet on version skew);
  - every EncodeXPayload in protocol.h has a matching DecodeXPayload
    (and vice versa), and both names appear in tests/protocol_test.cc —
    a codec without a round-trip test has no wire contract;
  - no server-opcode byte literal (0x80..0x8F) outside protocol.{h,cc}:
    code elsewhere must spell FrameType::kX, so renumbering stays a
    one-file change.

On trees without src/server/protocol.h (fixtures for other checkers)
the checker is silent.
"""

import re

from ..framework import Finding, checker

PROTO_H = "src/server/protocol.h"
PROTO_CC = "src/server/protocol.cc"
CLIENT_CC = "src/server/client.cc"
COORD_CC = "src/dist/coordinator.cc"
TEST_CC = "tests/protocol_test.cc"

ENUM_RE = re.compile(
    r"enum\s+class\s+FrameType[^{]*\{(.*?)\};", re.DOTALL)
ENUMERATOR_RE = re.compile(r"\bk(\w+)\s*=\s*(0x[0-9A-Fa-f]+|\d+)")
CODEC_RE = re.compile(r"\b(Encode|Decode)(\w+)Payload\b")
OPCODE_LITERAL_RE = re.compile(r"\b0x8[0-9A-Fa-f]\b")

# The optional trace-context block on QUERY/INGEST/PUNCTUATE payloads.
# Only useful end to end: declared on the request structs (protocol.h),
# encoded and decoded by the codec (protocol.cc), injected from the
# ambient context by the client (client.cc), and pinned by round-trip
# tests (protocol_test.cc).
TRACE_TOKENS = ("trace_id", "parent_span_id", "trace_sampled")


def _enumerators(sf):
    body = ENUM_RE.search(sf.pure)
    if not body:
        return None, []
    enum_line = sf.pure.count("\n", 0, body.start()) + 1
    out = []
    for m in ENUMERATOR_RE.finditer(body.group(1)):
        line = sf.pure.count("\n", 0, body.start(1) + m.start()) + 1
        out.append((m.group(1), int(m.group(2), 0), line))
    return enum_line, out


@checker("protocol-consistency",
         "every FrameType has codec, client handling, and a round-trip "
         "test; no opcode literals outside protocol.{h,cc}")
def protocol_consistency(repo):
    proto_h = repo.get(PROTO_H)
    if proto_h is None:
        return

    enum_line, enumerators = _enumerators(proto_h)
    if enum_line is None:
        yield Finding("protocol-consistency", PROTO_H, 1,
                      "no 'enum class FrameType' found")
        return

    seen_values = {}
    for name, value, line in enumerators:
        if value in seen_values:
            yield Finding(
                "protocol-consistency", PROTO_H, line,
                f"FrameType::k{name} reuses opcode {value:#04x} already "
                f"assigned to FrameType::k{seen_values[value]}")
        else:
            seen_values[value] = name

    for rel, role in ((PROTO_CC, "codec arm"),
                      (CLIENT_CC, "client handling")):
        sf = repo.get(rel)
        if sf is None:
            yield Finding("protocol-consistency", PROTO_H, enum_line,
                          f"{rel} is missing; every FrameType needs its "
                          f"{role} there")
            continue
        for name, _, line in enumerators:
            if not re.search(r"\bFrameType::k%s\b" % re.escape(name),
                             sf.pure):
                yield Finding(
                    "protocol-consistency", PROTO_H, line,
                    f"FrameType::k{name} has no {role} in {rel}")

    # Distributed opcodes: every Shard* enumerator must be handled by
    # the coordinator, which is the component the SHARD_* frames exist
    # for. Silent on trees that predate src/dist (fixtures).
    shard_enums = [(n, line) for n, _, line in enumerators
                   if n.startswith("Shard")]
    coord = repo.get(COORD_CC)
    if shard_enums and coord is None:
        yield Finding("protocol-consistency", PROTO_H, shard_enums[0][1],
                      f"FrameType declares Shard* opcodes but {COORD_CC} "
                      f"is missing; the coordinator is their consumer")
    elif coord is not None:
        for name, line in shard_enums:
            if not re.search(r"\bFrameType::k%s\b" % re.escape(name),
                             coord.pure):
                yield Finding(
                    "protocol-consistency", PROTO_H, line,
                    f"FrameType::k{name} has no coordinator handling in "
                    f"{COORD_CC}")

    # Encode/Decode pairing and round-trip test coverage.
    codecs = {}
    for m in CODEC_RE.finditer(proto_h.pure):
        line = proto_h.pure.count("\n", 0, m.start()) + 1
        codecs.setdefault(m.group(2), {})[m.group(1)] = line
    tests = repo.get(TEST_CC)
    for payload, arms in sorted(codecs.items()):
        for want in ("Encode", "Decode"):
            if want not in arms:
                have = next(iter(arms))
                yield Finding(
                    "protocol-consistency", PROTO_H, arms[have],
                    f"{have}{payload}Payload has no matching "
                    f"{want}{payload}Payload; codecs come in pairs")
        if tests is None:
            yield Finding(
                "protocol-consistency", PROTO_H,
                next(iter(arms.values())),
                f"{TEST_CC} is missing; {payload} payload codec has no "
                f"round-trip test")
            continue
        for arm, line in sorted(arms.items()):
            fn = f"{arm}{payload}Payload"
            if not re.search(r"\b%s\b" % re.escape(fn), tests.pure):
                yield Finding(
                    "protocol-consistency", PROTO_H, line,
                    f"{fn} is never exercised in {TEST_CC}; every codec "
                    f"arm needs round-trip coverage")

    # Trace-context block: all-or-nothing across the four sites, so the
    # context cannot silently stop riding the wire (a codec that still
    # decodes the block while the client stopped injecting it would
    # strand every shard span parentless). Silent on trees that predate
    # the trace block (fixtures for other aspects of this checker).
    trace_sites = ((PROTO_H, proto_h, "request structs"),
                   (PROTO_CC, repo.get(PROTO_CC), "codec"),
                   (CLIENT_CC, repo.get(CLIENT_CC), "client injection"),
                   (TEST_CC, tests, "round-trip tests"))
    if any(sf is not None and re.search(r"\b%s\b" % token, sf.pure)
           for _, sf, _ in trace_sites for token in TRACE_TOKENS):
        for rel, sf, role in trace_sites:
            if sf is None:
                continue  # absence of the file is reported above
            for token in TRACE_TOKENS:
                if not re.search(r"\b%s\b" % token, sf.pure):
                    yield Finding(
                        "protocol-consistency", rel, 1,
                        f"trace-context token '{token}' is missing from "
                        f"{rel} ({role}); the trace block is wired end "
                        f"to end or not at all")

    # Opcode byte literals outside the protocol implementation.
    for sf in repo.cpp_files():
        if sf.rel in (PROTO_H, PROTO_CC):
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            m = OPCODE_LITERAL_RE.search(code)
            if m:
                yield Finding(
                    "protocol-consistency", sf.rel, lineno,
                    f"server-opcode literal {m.group(0)} outside "
                    f"protocol.{{h,cc}}; spell it FrameType::kX so "
                    f"renumbering stays a one-file change")
