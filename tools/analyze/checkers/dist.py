"""dist-layering: the coordinator layers on the server, never the reverse.

src/dist/ is the distributed front end (docs/DISTRIBUTED.md). It reuses
the server's frame codec and client, so src/dist -> src/server is the
intended dependency direction. The reverse — any src/ code outside
src/dist/ including a "dist/..." header — would let single-process
builds grow a hidden dependency on the fleet machinery and make the
coordinator impossible to evolve independently; pcdbd must keep working
with src/dist deleted.

Tools, tests, and fuzz harnesses sit above every layer and may include
dist/ freely.
"""

import re

from ..framework import Finding, checker

INCLUDE_DIST_RE = re.compile(r'^\s*#include\s+"(dist/[^"]+)"')


@checker("dist-layering",
         "src/dist depends on src/server, never the reverse: no "
         '"dist/..." include outside src/dist/')
def dist_layering(repo):
    for sf in repo.cpp_files():
        if not sf.rel.startswith("src/") or sf.rel.startswith("src/dist/"):
            continue
        for lineno, code in enumerate(sf.code_lines, start=1):
            m = INCLUDE_DIST_RE.match(code)
            if m:
                yield Finding(
                    "dist-layering", sf.rel, lineno,
                    f'src/ outside src/dist/ must not include '
                    f'"{m.group(1)}"; the coordinator layers on the '
                    f"server (src/dist -> src/server), never the reverse")
