"""unchecked-status: the Status/Result discipline, statically enforced.

Three complementary rules:

1. The Status and Result class templates themselves carry a class-level
   [[nodiscard]] (src/common/status.h, src/common/result.h), so the
   compiler rejects any discarded by-value return under -Werror.
2. Every Status/Result-returning declaration in src/ headers carries a
   function-level [[nodiscard]] as well — redundant with (1) for
   by-value returns, but it keeps the contract visible at every API
   site and survives a future reference-returning overload.
3. A statement consisting solely of a call to a known Status/Result-
   returning API (harvested from the src/ headers) discards the error;
   wrap with PCDB_RETURN_NOT_OK / PCDB_CHECK(...ok()) or make the
   discard explicit with static_cast<void>.

Rule (3) deliberately re-implements what the compiler already proves
via (1): the checker also runs on trees that do not compile (fixtures,
mid-refactor states) and reports the project idiom in its message.
"""

import re

from ..framework import Finding, checker

NODISCARD_SWEEP_DIRS = ("src/common/", "src/obs/", "src/relational/",
                        "src/pattern/", "src/sql/", "src/server/",
                        "src/workloads/")

# A declaration whose return type is Status or Result<...>, with the
# optional [[nodiscard]] and specifiers captured so their absence is
# detectable. Anchored by hand (see _anchored) to declaration starts.
DECL_RE = re.compile(
    r"(?P<nd>\[\[nodiscard\]\]\s+)?"
    r"(?P<spec>(?:static|virtual|inline|constexpr|explicit|friend)\s+)*"
    r"(?P<type>Status|Result<[^;={}()]{1,160}>)\s*&?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")

# Characters that can legitimately precede a declaration start.
_ANCHOR_CHARS = {";", "{", "}", ":", ">", ")", ""}

# Statement openers that always use or intentionally route the value,
# plus declaration specifiers and the two explicit-discard spellings.
_SKIP_STMT_RE = re.compile(
    r"^(?:return|co_return|if|else|while|for|do|switch|case|default|"
    r"break|continue|goto|throw|delete|new|using|namespace|template|"
    r"typedef|static_assert|public|private|protected|extern|friend|"
    r"static|virtual|inline|constexpr|explicit|"
    r"static_cast|co_await|co_yield)\b"
    r"|^\(void\)"
    r"|^[A-Z][A-Z0-9_]*\s*\("  # macro invocation (PCDB_*, EXPECT_*, ...)
    r"|^#")

# Declaration-like statement: a type followed by a parenthesized name
# or ctor arguments ("Status st(...)", "Table decoded(schema)").
_DECL_STMT_RE = re.compile(
    r"^[A-Za-z_][\w:]*(?:<[^;]*>)?[\s*&]+[A-Za-z_]\w*\s*\(")


def _anchored(pure, pos):
    i = pos - 1
    while i >= 0 and pure[i] in " \t\n":
        i -= 1
    return (pure[i] if i >= 0 else "") in _ANCHOR_CHARS


# Any function declaration/definition, for overload-ambiguity pruning.
_ANY_DECL_RE = re.compile(
    r"(?:\[\[nodiscard\]\]\s+)?"
    r"(?:(?:static|virtual|inline|constexpr|explicit|friend)\s+)*"
    r"(?P<type>[A-Za-z_][\w:]*(?:<[^;={}()]{1,160}>)?)\s*[&*]?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")


def harvest_api(repo):
    """Names of Status/Result-returning functions declared in src/ headers.

    A name that also has a non-Status/Result-returning declaration
    anywhere in the tree is dropped: a lexical pass cannot resolve
    overloads, and a false "discarded" report on the value-returning
    overload would train people to ignore the checker. The compiler
    still covers the dropped names via the class-level [[nodiscard]].
    """
    api = set()
    for sf in repo.src_headers():
        for m in DECL_RE.finditer(sf.pure):
            if _anchored(sf.pure, m.start()):
                api.add(m.group("name"))
    keywords = {"return", "co_return", "co_yield", "co_await", "throw",
                "new", "delete", "else", "case", "goto", "using",
                "typedef", "namespace", "if", "while", "for", "switch",
                "do", "break", "continue", "public", "private",
                "protected", "default", "Status", "Result"}
    if api:
        for sf in repo.cpp_files():
            for m in _ANY_DECL_RE.finditer(sf.pure):
                name = m.group("name")
                base = m.group("type").split("<")[0]
                if (name in api and base not in keywords
                        and _anchored(sf.pure, m.start())):
                    api.discard(name)
    return api


def _statements(pure):
    """Yields (lineno, stmt) for top-level-semicolon statements."""
    line = 1
    stmt_line = 1
    depth = 0
    buf = []
    for c in pure:
        if c == "\n":
            line += 1
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        if c == ";" and depth == 0:
            yield stmt_line, "".join(buf).strip()
            buf = []
            stmt_line = line
            continue
        if c in "{}" and depth == 0:
            buf = []
            stmt_line = line
            continue
        if not buf and c in " \t\n":
            stmt_line = line
            continue
        buf.append(c)


def _top_level_assign(stmt):
    depth = 0
    for i, c in enumerate(stmt):
        if c in "([<":
            depth += 1
        elif c in ")]>":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            prev = stmt[i - 1] if i else ""
            nxt = stmt[i + 1] if i + 1 < len(stmt) else ""
            if prev not in "=!<>+-*/&|^" and nxt != "=":
                return True
    return False


def _final_call_name(stmt):
    """For `a.B(x)->C(y)` returns "C"; None if the statement is not a
    plain call chain (so the value is consumed some other way)."""
    i = 0
    while True:
        m = re.search(r"([A-Za-z_]\w*)\s*\(", stmt[i:])
        if not m:
            return None
        start = i + m.end() - 1
        depth = 0
        j = start
        while j < len(stmt):
            if stmt[j] == "(":
                depth += 1
            elif stmt[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= len(stmt):
            return None
        rest = stmt[j + 1:].strip()
        if rest.startswith(".") or rest.startswith("->"):
            i = j + 1
            continue
        return m.group(1) if rest == "" else None


@checker("unchecked-status",
         "Status/Result returns carry [[nodiscard]] and are never "
         "silently discarded")
def unchecked_status(repo):
    # (1) class-level attribute on the error types themselves.
    for rel, cls in (("src/common/status.h", "Status"),
                     ("src/common/result.h", "Result")):
        sf = repo.get(rel)
        if sf is None:
            continue
        decl = re.search(r"class\s+(\[\[nodiscard\]\]\s+)?" + cls + r"\b",
                         sf.pure)
        if decl is not None and not decl.group(1):
            line = sf.pure.count("\n", 0, decl.start()) + 1
            yield Finding(
                "unchecked-status", rel, line,
                f"class {cls} must be declared [[nodiscard]] so every "
                f"discarded by-value return is a compile error")

    # (2) function-level attribute on every declaration in src/ headers.
    for sf in repo.src_headers():
        if not sf.rel.startswith(NODISCARD_SWEEP_DIRS):
            continue
        for m in DECL_RE.finditer(sf.pure):
            if not _anchored(sf.pure, m.start()) or m.group("nd"):
                continue
            line = sf.pure.count("\n", 0, m.start("name")) + 1
            yield Finding(
                "unchecked-status", sf.rel, line,
                f"declaration of '{m.group('name')}' returns "
                f"{m.group('type').split('<')[0]} but lacks "
                f"[[nodiscard]]")

    # (3) discarded calls anywhere in the tree.
    api = harvest_api(repo)
    if not api:
        return
    for sf in repo.cpp_files():
        for lineno, stmt in _statements(sf.pure):
            # [[nodiscard]] and other attribute prefixes would defeat
            # the declaration-shape test below.
            stmt = re.sub(r"^(?:\[\[[^\]]*\]\]\s*)+", "", stmt)
            if not stmt or _SKIP_STMT_RE.match(stmt):
                continue
            if _DECL_STMT_RE.match(stmt) or _top_level_assign(stmt):
                continue
            name = _final_call_name(stmt)
            if name in api:
                yield Finding(
                    "unchecked-status", sf.rel, lineno,
                    f"result of Status/Result-returning call '{name}' is "
                    f"discarded; use PCDB_RETURN_NOT_OK / check .ok(), "
                    f"or static_cast<void> to discard explicitly")
