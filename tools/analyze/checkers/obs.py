"""obs-registry: metric and span names exist in exactly one place.

src/obs/names.h declares every metric and trace-span name as a
constant, plus the kAllSpanNames / kAllMetricNames completeness tables
that tools/check_trace.py and the dashboards consume. The checker
enforces the registry contract:

  - every kSpan*/kMetric* constant appears in its kAll* table;
  - every table entry is a declared constant, with no duplicates;
  - name values are unique within their namespace;
  - no constant is dead (each is referenced somewhere in src/ outside
    names.h — a dead name is a dashboard entry that never reports);
  - call sites in src/ pass constants, not string literals, to
    GetCounter / GetGauge / GetHistogram / PCDB_TRACE_SPAN /
    RecordInterval. Tests are exempt: asserting on the literal wire
    value of a name is exactly what a test should do.

Silent on trees without src/obs/names.h.
"""

import re

from ..framework import Finding, checker

NAMES_H = "src/obs/names.h"

CONST_RE = re.compile(
    r"inline\s+constexpr\s+char\s+(k\w+)\[\]\s*=\s*\n?\s*\"([^\"]*)\"")
TABLE_RE = re.compile(
    r"inline\s+constexpr\s+const\s+char\s*\*\s*(kAll\w+)\[\]\s*=\s*"
    r"\{(.*?)\};", re.DOTALL)
LITERAL_CALL_RE = re.compile(
    r"\b(GetCounter|GetGauge|GetHistogram|PCDB_TRACE_SPAN|RecordInterval)"
    r"\s*\(\s*\"")

# Names the cross-process tooling addresses by value: check_trace.py
# --stitched walks dist.scatter ancestry, trace_merge.py reads
# dist.handshake RTTs, and the fleet STATS payload is keyed on the
# coordinator counters. A rename must be caught here, not when a merged
# trace stops stitching. Enforced only on trees with the distributed
# front end.
DIST_VOCABULARY = (
    "dist.query", "dist.scatter", "dist.merge", "dist.write",
    "dist.handshake", "fleet_stats_total", "profile_merges_total",
    "shard_latency", "shard_errors_total",
)


def _constants(sf):
    """name -> (value, line), parsed from the raw text (CONST_RE spans
    the line break of wrapped declarations, which pure-view blanking
    preserves)."""
    out = {}
    for m in CONST_RE.finditer(sf.text):
        line = sf.text.count("\n", 0, m.start()) + 1
        out[m.group(1)] = (m.group(2), line)
    return out


def _tables(sf):
    """table name -> (entries list, line)."""
    out = {}
    for m in TABLE_RE.finditer(sf.text):
        line = sf.text.count("\n", 0, m.start()) + 1
        entries = re.findall(r"\bk\w+\b", m.group(2))
        out[m.group(1)] = (entries, line)
    return out


@checker("obs-registry",
         "metric/span names live only in src/obs/names.h; call sites "
         "reference the constants and the kAll* tables are complete")
def obs_registry(repo):
    names_h = repo.get(NAMES_H)
    if names_h is None:
        return

    consts = _constants(names_h)
    tables = _tables(names_h)

    groups = (("kSpan", "kAllSpanNames"), ("kMetric", "kAllMetricNames"))
    for prefix, table_name in groups:
        members = {n: v for n, v in consts.items() if n.startswith(prefix)}
        entries, table_line = tables.get(table_name, ([], None))
        if table_line is None:
            yield Finding("obs-registry", NAMES_H, 1,
                          f"registry table {table_name} is missing")
            continue
        entry_set = set()
        for e in entries:
            if e in entry_set:
                yield Finding(
                    "obs-registry", NAMES_H, table_line,
                    f"{table_name} lists {e} more than once")
            entry_set.add(e)
            if e not in members:
                yield Finding(
                    "obs-registry", NAMES_H, table_line,
                    f"{table_name} entry {e} is not a declared "
                    f"{prefix}* constant")
        values = {}
        for name, (value, line) in sorted(members.items()):
            if name not in entry_set:
                yield Finding(
                    "obs-registry", NAMES_H, line,
                    f"{name} is missing from {table_name}; the table "
                    f"must list every {prefix}* constant")
            if value in values:
                yield Finding(
                    "obs-registry", NAMES_H, line,
                    f"{name} reuses the name \"{value}\" already "
                    f"declared by {values[value]}")
            else:
                values[value] = name

    # Dead constants: never referenced in src/ outside names.h. The
    # kAll* tables themselves are consumed by tools, so they are
    # exempt from the liveness requirement.
    uses = set()
    for sf in repo.src_cpp_files():
        if sf.rel == NAMES_H:
            continue
        uses.update(re.findall(r"\bk(?:Span|Metric|All)\w+\b", sf.pure))
    for name, (_, line) in sorted(consts.items()):
        if name.startswith("kAll"):
            continue
        if name not in uses:
            yield Finding(
                "obs-registry", NAMES_H, line,
                f"{name} is declared but never used in src/; a dead "
                f"name is a dashboard entry that never reports")

    # Distributed observability vocabulary (see DIST_VOCABULARY).
    if repo.get("src/dist/coordinator.cc") is not None:
        declared = {value for value, _ in consts.values()}
        for required in DIST_VOCABULARY:
            if required not in declared:
                yield Finding(
                    "obs-registry", NAMES_H, 1,
                    f"distributed vocabulary name \"{required}\" is not "
                    f"declared in the registry; trace_merge.py, "
                    f"check_trace.py --stitched, and the fleet STATS "
                    f"merge address it by value")

    # String-literal call sites in src/.
    for sf in repo.src_cpp_files():
        if sf.rel == NAMES_H:
            continue
        for lineno, code in enumerate(sf.code_lines, start=1):
            m = LITERAL_CALL_RE.search(code)
            if m:
                yield Finding(
                    "obs-registry", sf.rel, lineno,
                    f"{m.group(1)} called with a string literal; pass a "
                    f"constant from obs/names.h so the registry stays "
                    f"the single source of truth")
