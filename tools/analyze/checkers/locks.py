"""lock-hierarchy: every observed lock nesting is declared and acyclic.

The inputs are the Clang Thread Safety annotations the codebase already
carries: `Mutex m PCDB_ACQUIRED_BEFORE(other);` (or _AFTER) member
declarations define the directed acquisition-order graph. The checker:

1. builds the declared graph from src/ headers and rejects cycles —
   an acyclic declared order is what makes deadlock impossible;
2. lexically scans every function body for nested MutexLock scopes
   (a MutexLock constructed while another is live in an enclosing or
   preceding scope of the same function) and requires the observed
   (outer, inner) pair to be a declared edge.

Mutexes are identified by member name (write_mu_, db_mu_); the scan is
per-function, so cross-function nesting through calls is out of scope —
that is what the runtime TSan job is for. The lexical pass catches the
common case (two MutexLock locals in one body) at zero runtime cost and
forces every such nesting to be annotated where readers look for it.
"""

import re

from ..framework import Finding, checker

MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*"
    r"(?:PCDB_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\))?\s*;")

LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&?([\w.\->]+)")


def _normalize(expr):
    """`&this->write_mu_` / `buffer->mu` -> last member component."""
    expr = expr.strip().lstrip("&")
    for sep in ("->", ".", "::"):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr


def _declared_edges(repo):
    """(outer, inner) pairs from PCDB_ACQUIRED_BEFORE/AFTER, with the
    file/line of the declaration for findings."""
    edges = {}
    for sf in repo.src_headers():
        for m in MUTEX_DECL_RE.finditer(sf.pure):
            name, kind, args = m.group(1), m.group(2), m.group(3)
            if not kind:
                continue
            line = sf.pure.count("\n", 0, m.start()) + 1
            for other in (a.strip() for a in args.split(",")):
                other = _normalize(other)
                if not other:
                    continue
                pair = ((name, other) if kind == "BEFORE"
                        else (other, name))
                edges.setdefault(pair, (sf.rel, line))
    return edges


def _find_cycle(edges):
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack = []

    def dfs(n):
        color[n] = GREY
        stack.append(n)
        for nxt in graph.get(n, ()):
            if color.get(nxt, WHITE) == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cyc = dfs(nxt)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = BLACK
        return None

    for n in list(graph):
        if color[n] == WHITE:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def _observed_nestings(sf):
    """Yields (outer, inner, lineno) for MutexLock scopes nested within
    one function body, tracked by brace depth."""
    depth = 0
    active = []  # (decl_depth, mutex_name)
    line = 1
    pure = sf.pure
    i, n = 0, len(pure)
    while i < n:
        c = pure[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "{":
            depth += 1
            i += 1
            continue
        if c == "}":
            depth -= 1
            active = [(d, m) for (d, m) in active if d <= depth]
            if depth <= 0:
                depth = 0
                active = []
            i += 1
            continue
        if c == "M":
            m = LOCK_RE.match(pure, i)
            if m:
                inner = _normalize(m.group(1))
                for _, outer in active:
                    if outer != inner:
                        yield outer, inner, line
                active.append((depth, inner))
                i = m.end()
                continue
        i += 1


@checker("lock-hierarchy",
         "nested MutexLock scopes follow the declared "
         "PCDB_ACQUIRED_BEFORE/AFTER order, which must be acyclic")
def lock_hierarchy(repo):
    edges = _declared_edges(repo)

    cycle = _find_cycle(edges)
    if cycle:
        first = edges[(cycle[0], cycle[1])]
        yield Finding(
            "lock-hierarchy", first[0], first[1],
            "declared lock order is cyclic: " + " -> ".join(cycle)
            + "; a cyclic acquisition order permits deadlock")

    for sf in repo.src_cpp_files():
        for outer, inner, line in _observed_nestings(sf):
            if (outer, inner) in edges:
                continue
            yield Finding(
                "lock-hierarchy", sf.rel, line,
                f"'{inner}' acquired while '{outer}' is held, but no "
                f"PCDB_ACQUIRED_BEFORE/AFTER declares the edge "
                f"{outer} -> {inner}; annotate the Mutex member or "
                f"restructure the scopes")
