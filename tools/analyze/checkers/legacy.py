"""The seven original pcdb_lint.py rules, migrated to the framework.

Rule semantics are unchanged from the retired standalone linter; only
the comment stripping improved (string-literal aware, so a pattern
inside a log message can no longer fire), and violations can now be
suppressed inline with a justification.
"""

import pathlib
import re

from ..framework import Finding, checker

# Layer -> layers it may include (itself always allowed).
LAYER_DEPS = {
    "common": set(),
    "obs": {"common"},
    "relational": {"common", "obs"},
    "pattern": {"common", "obs", "relational"},
    "sql": {"common", "obs", "relational", "pattern"},
    "workloads": {"common", "obs", "relational", "pattern"},
    "durability": {"common", "obs", "relational", "pattern"},
    "server": {"common", "obs", "relational", "pattern", "sql", "durability"},
    # The distributed front end layers strictly on top of the server
    # (reuses its protocol codec and client); the reverse direction is
    # additionally policed by the dedicated dist-layering checker.
    "dist": {"common", "obs", "relational", "pattern", "sql", "durability",
             "server"},
}

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
NAKED_THREAD_RE = re.compile(r"std::thread\b")
SETCELL_CALL_RE = re.compile(r"[.>]\s*SetCell\s*\(")
INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')
ABORT_RE = re.compile(r"\b(?:std::)?(?:abort|exit|_Exit|quick_exit)\s*\(")

# Raw Berkeley socket / poll syscalls. The leading lookbehinds reject
# member calls (.send(, ->recv(), identifiers (my_bind(), and std::bind,
# while still matching globally-qualified ::socket( forms.
RAW_SOCKET_RE = re.compile(
    r"(?<![A-Za-z0-9_.>])(?<!std::)"
    r"(?:socket|bind|listen|accept4?|connect|send|sendto|recv|recvfrom|"
    r"setsockopt|getsockopt|getsockname|getpeername|"
    r"poll|epoll_create1|epoll_ctl|epoll_wait|shutdown)\s*\(")

# Naked diagnostic output in library code. The lookbehind rejects the
# bounded-buffer formatters (snprintf, vsnprintf) and member calls.
NAKED_OUTPUT_RE = re.compile(
    r"std::(cerr|cout|clog)\b"
    r"|(?<![A-Za-z0-9_.>:])(?:printf|fprintf|vprintf|vfprintf|puts|fputs)"
    r"\s*\(")

MUTEX_ALLOWED = {"src/common/thread_annotations.h"}
THREAD_ALLOWED = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}
ABORT_ALLOWED = {"src/common/logging.h", "fuzz/fuzz_util.h"}
OUTPUT_ALLOWED = {"src/common/log.h", "src/common/log.cc",
                  "src/common/logging.h"}


def _layer_of(rel):
    parts = pathlib.PurePosixPath(rel).parts
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_DEPS:
        return parts[1]
    return None


@checker("naked-mutex",
         "std::mutex and friends only in common/thread_annotations.h")
def naked_mutex(repo):
    for sf in repo.cpp_files():
        if sf.rel in MUTEX_ALLOWED or sf.rel in THREAD_ALLOWED:
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            m = NAKED_MUTEX_RE.search(code)
            if m:
                yield Finding(
                    "naked-mutex", sf.rel, lineno,
                    f"use pcdb::Mutex/MutexLock/CondVar from "
                    f"common/thread_annotations.h instead of {m.group(0)} "
                    f"so Thread Safety Analysis sees every lock")


@checker("naked-thread", "std::thread only in the ThreadPool implementation")
def naked_thread(repo):
    for sf in repo.cpp_files():
        if sf.rel in THREAD_ALLOWED:
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            if NAKED_THREAD_RE.search(code):
                yield Finding(
                    "naked-thread", sf.rel, lineno,
                    "spawn work through pcdb::ThreadPool, not std::thread")


@checker("pattern-mutation",
         "Pattern::SetCell is reserved for src/pattern/ internals")
def pattern_mutation(repo):
    for sf in repo.cpp_files():
        if sf.rel.startswith("src/pattern/"):
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            if SETCELL_CALL_RE.search(code):
                yield Finding(
                    "pattern-mutation", sf.rel, lineno,
                    "Pattern::SetCell is reserved for src/pattern/ "
                    "internals; build patterns via constructors or the "
                    "algebra API")


@checker("layering",
         "includes follow the layer DAG common < obs < relational < "
         "pattern < {sql, workloads} < server < dist")
def layering(repo):
    for sf in repo.cpp_files():
        layer = _layer_of(sf.rel)
        if layer is None:
            continue
        for lineno, code in enumerate(sf.code_lines, start=1):
            m = INCLUDE_RE.match(code)
            if not m:
                continue
            inc = m.group(1)
            inc_layer = inc.split("/", 1)[0]
            if (inc_layer in LAYER_DEPS and inc_layer != layer
                    and inc_layer not in LAYER_DEPS[layer]):
                yield Finding(
                    "layering", sf.rel, lineno,
                    f'src/{layer}/ must not include "{inc}" '
                    f"(allowed: {sorted(LAYER_DEPS[layer] | {layer})})")


@checker("no-abort",
         "library code reports failures as Status, never terminates")
def no_abort(repo):
    for sf in repo.cpp_files():
        if sf.rel in ABORT_ALLOWED:
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            if ABORT_RE.search(code):
                yield Finding(
                    "no-abort", sf.rel, lineno,
                    "return a Status instead of terminating; only "
                    "common/logging.h (PCDB_CHECK) and fuzz/fuzz_util.h "
                    "may abort the process")


@checker("raw-socket",
         "Berkeley socket / poll syscalls confined to src/server/net_*")
def raw_socket(repo):
    for sf in repo.cpp_files():
        if sf.rel.startswith("src/server/net_"):
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            if RAW_SOCKET_RE.search(code):
                yield Finding(
                    "raw-socket", sf.rel, lineno,
                    "raw socket/poll syscalls are confined to "
                    "src/server/net_*; use the Socket/Listener wrappers")


@checker("naked-output",
         "src/ diagnostics go through common/log.h, not stdout/stderr")
def naked_output(repo):
    for sf in repo.cpp_files():
        if not sf.rel.startswith("src/") or sf.rel in OUTPUT_ALLOWED:
            continue
        for lineno, code in enumerate(sf.pure_lines, start=1):
            if NAKED_OUTPUT_RE.search(code):
                yield Finding(
                    "naked-output", sf.rel, lineno,
                    "emit diagnostics through common/log.h (LogInfo/"
                    "LogWarn/LogError), not std::cerr/std::cout/printf")
