"""blocking-in-loop: the server event-loop thread never blocks.

pcdbd's Server runs one poll-driven loop thread; everything that can
take unbounded time (query evaluation, write application) is handed to
the eval pool. A sleep, filesystem touch, or outbound connect on the
loop thread stalls every connection at once, so the checker walks the
static call graph of src/server/server.cc from Server::RunLoop and
flags blocking primitives reachable on that thread.

Work dispatched through a pool's Submit() runs on a pool thread, so
lambda arguments to Submit calls are blanked before extracting callees.
The scan is lexical and intra-file: helpers the loop calls in other
translation units (the Socket wrappers) are nonblocking by design and
covered by their own reviews; the checker's job is to keep obviously
blocking primitives from creeping into the loop's own code paths.

Silent on trees without src/server/server.cc.
"""

import re

from ..framework import Finding, checker

SERVER_CC = "src/server/server.cc"
SEED = "RunLoop"

DEF_RE = re.compile(r"^\S[^=\n]*\bServer::(\w+)\s*\(", re.MULTILINE)

BLOCKING_RE = re.compile(
    r"\b(sleep_for|sleep_until|usleep|nanosleep|"
    r"std::(?:i|o)?fstream|fopen|freopen|getline|"
    r"TcpConnect|system|popen|WaitIdle|Await)\s*[(<]"
    r"|\bstd::this_thread::sleep\b")

CALL_RE = re.compile(r"(?<![\w.>:])(\w+)\s*\(")


def _function_bodies(sf):
    """name -> (body text, body start line) for Server:: definitions."""
    out = {}
    for m in DEF_RE.finditer(sf.pure):
        open_brace = sf.pure.find("{", m.end())
        if open_brace < 0:
            continue
        semi = sf.pure.find(";", m.end())
        if 0 <= semi < open_brace:
            continue  # a declaration, not a definition
        depth = 0
        i = open_brace
        while i < len(sf.pure):
            if sf.pure[i] == "{":
                depth += 1
            elif sf.pure[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = sf.pure[open_brace:i + 1]
        line = sf.pure.count("\n", 0, open_brace) + 1
        out.setdefault(m.group(1), (body, line))
    return out


def _blank_submit_args(body):
    """Blanks the argument list of every ...Submit(...) call: those
    lambdas run on a pool thread, not the loop thread."""
    out = list(body)
    for m in re.finditer(r"\bSubmit\s*\(", body):
        depth = 0
        i = m.end() - 1
        while i < len(body):
            if body[i] == "(":
                depth += 1
            elif body[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1 and body[i] != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


@checker("blocking-in-loop",
         "no sleeps, filesystem I/O, or connects reachable on the "
         "Server event-loop thread")
def blocking_in_loop(repo):
    sf = repo.get(SERVER_CC)
    if sf is None:
        return
    bodies = _function_bodies(sf)
    if SEED not in bodies:
        yield Finding("blocking-in-loop", SERVER_CC, 1,
                      f"Server::{SEED} not found; the event-loop seed "
                      f"of the reachability walk is gone")
        return

    loop_view = {name: (_blank_submit_args(body), line)
                 for name, (body, line) in bodies.items()}

    reachable = []
    seen = set()
    work = [SEED]
    while work:
        name = work.pop()
        if name in seen or name not in loop_view:
            continue
        seen.add(name)
        reachable.append(name)
        body, _ = loop_view[name]
        for cm in CALL_RE.finditer(body):
            if cm.group(1) in bodies:
                work.append(cm.group(1))

    for name in reachable:
        body, start_line = loop_view[name]
        for m in BLOCKING_RE.finditer(body):
            line = start_line + body.count("\n", 0, m.start())
            what = m.group(0).rstrip("(<").strip()
            yield Finding(
                "blocking-in-loop", SERVER_CC, line,
                f"'{what}' in Server::{name} is reachable from the "
                f"event-loop thread (via {SEED}); blocking there stalls "
                f"every connection — move the work to the eval pool")
