"""failpoint-drift: fault-injection sites, sweeps, and docs stay in sync.

Four artifacts describe the same set of failpoint sites:

  1. the instrumented code: PCDB_FAILPOINT("x") / Failpoints .Hit("x")
     / .IsActive("x") call sites in src/;
  2. the canonical table in Failpoints::AllSites()
     (src/common/failpoint.cc) that tests iterate to cover the matrix;
  3. the `sites=` sweep list in tools/ci.sh's faults stage;
  4. the site catalogue in docs/ROBUSTNESS.md.

Any of these drifting silently means a fault path that exists but is
never exercised, or a sweep/doc entry for a site that no longer fires.
The checker cross-checks all pairs, in both directions. A deliberate
omission (ci.sh leaves out pool.dispatch because arming it violates
ParallelFor's documented precondition) carries an inline suppression
with that justification. Artifacts absent under --root (fixture trees)
skip their comparisons.
"""

import re

from ..framework import Finding, checker

FAILPOINT_CC = "src/common/failpoint.cc"
CI_SH = "tools/ci.sh"
ROBUSTNESS_MD = "docs/ROBUSTNESS.md"

SITE_USE_RE = re.compile(
    r'(?:PCDB_FAILPOINT\s*\(\s*|\.\s*(?:Hit|IsActive)\s*\(\s*)"([^"]+)"')
ALLSITES_RE = re.compile(
    r"AllSites\s*\(\)\s*\{(.*?)\breturn\b", re.DOTALL)
SITES_ASSIGN_RE = re.compile(r'\bsites="([^"]*)"', re.DOTALL)
BACKTICK_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")
FILE_SUFFIXES = (".sh", ".py", ".md", ".cc", ".h", ".json", ".txt",
                 ".cmake", ".sarif")


def _code_sites(repo):
    """site -> (rel, line) of first instrumented use in src/."""
    sites = {}
    for sf in repo.src_cpp_files():
        if sf.rel == FAILPOINT_CC:
            continue  # the registry implementation, not a site
        for m in SITE_USE_RE.finditer(sf.code):
            line = sf.code.count("\n", 0, m.start()) + 1
            sites.setdefault(m.group(1), (sf.rel, line))
    return sites


def _canonical_sites(sf):
    """site -> line from the AllSites() table in failpoint.cc."""
    m = ALLSITES_RE.search(sf.code)
    if m is None:
        return None
    out = {}
    for sm in re.finditer(r'"([^"]+)"', m.group(1)):
        line = sf.code.count("\n", 0, m.start(1) + sm.start()) + 1
        out.setdefault(sm.group(1), line)
    return out


def _ci_sites(sf):
    """site -> line from the faults-stage sites= list in ci.sh."""
    m = SITES_ASSIGN_RE.search(sf.code)
    if m is None:
        return None, None
    assign_line = sf.code.count("\n", 0, m.start()) + 1
    out = {}
    for tok in m.group(1).replace("\\", " ").split():
        out.setdefault(tok, assign_line)
    return out, assign_line


def _doc_sites(sf):
    """site-shaped backticked tokens -> line from ROBUSTNESS.md."""
    out = {}
    for lineno, line in enumerate(sf.lines, start=1):
        for m in BACKTICK_RE.finditer(line):
            tok = m.group(1)
            if tok.endswith(FILE_SUFFIXES) or "/" in tok:
                continue
            out.setdefault(tok, lineno)
    return out


@checker("failpoint-drift",
         "failpoint sites, the AllSites table, the ci.sh fault sweep, "
         "and docs/ROBUSTNESS.md agree in both directions")
def failpoint_drift(repo):
    code = _code_sites(repo)

    fp_cc = repo.get(FAILPOINT_CC)
    if fp_cc is not None:
        canonical = _canonical_sites(fp_cc)
        if canonical is None:
            yield Finding("failpoint-drift", FAILPOINT_CC, 1,
                          "no Failpoints::AllSites() table found")
        else:
            for site, (rel, line) in sorted(code.items()):
                if site not in canonical:
                    yield Finding(
                        "failpoint-drift", rel, line,
                        f"failpoint site '{site}' is instrumented here "
                        f"but missing from Failpoints::AllSites(); tests "
                        f"iterating the table will never arm it")
            for site, line in sorted(canonical.items()):
                if site not in code:
                    yield Finding(
                        "failpoint-drift", FAILPOINT_CC, line,
                        f"AllSites() lists '{site}' but no src/ code "
                        f"instruments it; delete the stale entry")

    ci = repo.get(CI_SH)
    if ci is not None:
        swept, assign_line = _ci_sites(ci)
        if swept is None:
            yield Finding("failpoint-drift", CI_SH, 1,
                          "no faults-stage sites=\"...\" list found")
        else:
            for site in sorted(code):
                if site not in swept:
                    yield Finding(
                        "failpoint-drift", CI_SH, assign_line,
                        f"failpoint site '{site}' is not in the faults "
                        f"sweep; every site must be exercised or carry "
                        f"a justified suppression")
            for site, line in sorted(swept.items()):
                if site not in code:
                    yield Finding(
                        "failpoint-drift", CI_SH, line,
                        f"faults sweep arms '{site}' but no src/ code "
                        f"instruments it; delete the stale entry")

    docs = repo.get(ROBUSTNESS_MD)
    if docs is not None:
        documented = _doc_sites(docs)
        for site, (rel, line) in sorted(code.items()):
            if site not in documented:
                yield Finding(
                    "failpoint-drift", rel, line,
                    f"failpoint site '{site}' is undocumented; add it "
                    f"to the catalogue in {ROBUSTNESS_MD}")
        for site, line in sorted(documented.items()):
            if site not in code:
                yield Finding(
                    "failpoint-drift", ROBUSTNESS_MD, line,
                    f"documents failpoint '{site}' which no src/ code "
                    f"instruments; delete the stale entry")
