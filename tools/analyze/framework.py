"""Checker registry, runner, and output formats for pcdb-analyze.

A checker is a function taking a model.Repo and yielding Findings. It
registers itself with the @checker decorator; importing the checkers
package populates the registry. The runner applies inline suppressions
(model.Suppression) after all checkers have run, then audits the
suppression inventory itself: an allow() that is unjustified, names an
unknown checker, or matched nothing is reported under the reserved
checker name "suppression".
"""

import json

SUPPRESSION_CHECKER = "suppression"


class Finding:
    def __init__(self, checker, rel, line, message):
        self.checker = checker
        self.rel = rel
        self.line = line
        self.message = message

    def sort_key(self):
        return (self.rel, self.line, self.checker, self.message)

    def render(self):
        return f"{self.rel}:{self.line}: [{self.checker}] {self.message}"


CHECKERS = {}  # name -> (function, one-line help)


def checker(name, help_text):
    if name == SUPPRESSION_CHECKER:
        raise ValueError(f"'{SUPPRESSION_CHECKER}' is reserved")

    def register(fn):
        if name in CHECKERS:
            raise ValueError(f"duplicate checker {name!r}")
        CHECKERS[name] = (fn, help_text)
        return fn
    return register


def run(repo, names=None):
    """Runs checkers and returns (findings, stats).

    `names=None` runs every registered checker and additionally reports
    unused suppressions; with an explicit subset, unused-suppression
    auditing is limited to the selected checkers (an allow() for a
    checker that did not run cannot be judged unused).
    """
    all_selected = names is None
    selected = sorted(CHECKERS) if all_selected else list(names)
    for name in selected:
        if name not in CHECKERS:
            raise KeyError(f"unknown checker {name!r} "
                           f"(known: {', '.join(sorted(CHECKERS))})")

    raw = []
    for name in selected:
        fn, _ = CHECKERS[name]
        for f in fn(repo):
            raw.append(f)

    findings = []
    suppressed = 0
    for f in sorted(raw, key=Finding.sort_key):
        sf = repo.get(f.rel)
        hit = None
        if sf is not None:
            for sup in sf.suppressions:
                if (sup.checker == f.checker and sup.covers == f.line
                        and sup.justification):
                    hit = sup
                    break
        if hit is not None:
            hit.used = True
            suppressed += 1
        else:
            findings.append(f)

    # Audit the suppression inventory across every scanned file.
    for sf in repo.files():
        for sup in sf.suppressions:
            if not sup.justification:
                findings.append(Finding(
                    SUPPRESSION_CHECKER, sf.rel, sup.line,
                    f"allow({sup.checker}) needs a justification: "
                    f"write 'pcdb-analyze: allow({sup.checker}): <why>'"))
                continue
            if sup.checker not in CHECKERS:
                findings.append(Finding(
                    SUPPRESSION_CHECKER, sf.rel, sup.line,
                    f"allow({sup.checker}) names an unknown checker "
                    f"(known: {', '.join(sorted(CHECKERS))})"))
                continue
            if (not sup.used and (all_selected or sup.checker in selected)):
                findings.append(Finding(
                    SUPPRESSION_CHECKER, sf.rel, sup.line,
                    f"allow({sup.checker}) matched no finding; delete "
                    f"the stale suppression"))

    findings.sort(key=Finding.sort_key)
    stats = {
        "files": len(repo.files()),
        "checkers": selected,
        "suppressed": suppressed,
    }
    return findings, stats


# --- Output formats -------------------------------------------------------

def render_text(findings, stats):
    out = [f.render() for f in findings]
    if findings:
        out.append(f"pcdb-analyze: {len(findings)} finding(s) in "
                   f"{stats['files']} files "
                   f"({stats['suppressed']} suppressed)")
    else:
        out.append(f"pcdb-analyze: OK ({stats['files']} files, "
                   f"{len(stats['checkers'])} checkers, "
                   f"{stats['suppressed']} suppressed)")
    return "\n".join(out) + "\n"


def render_json(findings, stats):
    return json.dumps({
        "findings": [{"checker": f.checker, "path": f.rel, "line": f.line,
                      "message": f.message} for f in findings],
        "files_scanned": stats["files"],
        "checkers": stats["checkers"],
        "suppressed": stats["suppressed"],
    }, indent=2) + "\n"


def render_sarif(findings, stats):
    """SARIF 2.1.0, the exchange format CI systems ingest natively."""
    rule_ids = sorted({f.checker for f in findings}
                      | set(stats["checkers"]) | {SUPPRESSION_CHECKER})
    rules = []
    for rid in rule_ids:
        help_text = (CHECKERS[rid][1] if rid in CHECKERS
                     else "suppression inventory audit")
        rules.append({
            "id": rid,
            "shortDescription": {"text": help_text},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.checker,
            "ruleIndex": rule_ids.index(f.checker),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
        })
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "pcdb-analyze",
                "informationUri":
                    "docs/STATIC_ANALYSIS.md",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
