"""pcdb-analyze: the project's checker-framework static analysis.

A lightweight, stdlib-only analysis pass over the repository's C++ (and
the shell/python/markdown files some invariants span). Checkers register
with the framework (see framework.py) and walk a shared source model
(model.py); the driver (pcdb_analyze.py) runs them and renders findings
as text, JSON, or SARIF.

Run:  python3 tools/analyze/pcdb_analyze.py [--root REPO] [--checker C]...
"""
