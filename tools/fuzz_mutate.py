#!/usr/bin/env python3
"""Deterministic corpus mutator for the no-libFuzzer smoke path.

tools/ci.sh fuzz uses this when the toolchain cannot link
-fsanitize=fuzzer (GCC): each round derives a batch of mutated inputs
from the checked-in seed corpus with a fixed RNG seed, so any sanitizer
crash reproduces by re-running the same round and replaying the written
files.

  python3 tools/fuzz_mutate.py --seed N --out DIR seed1 [seed2 ...]

Mutations are the classic byte-level set: flip, overwrite, insert,
delete, duplicate a span, splice two seeds, truncate.
"""

import argparse
import pathlib
import random


def mutate(data, rng):
    out = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        op = rng.randrange(7)
        if op == 0 and out:  # bit flip
            i = rng.randrange(len(out))
            out[i] ^= 1 << rng.randrange(8)
        elif op == 1 and out:  # overwrite byte
            out[rng.randrange(len(out))] = rng.randrange(256)
        elif op == 2:  # insert byte
            out.insert(rng.randint(0, len(out)), rng.randrange(256))
        elif op == 3 and out:  # delete byte
            del out[rng.randrange(len(out))]
        elif op == 4 and out:  # duplicate a span
            i = rng.randrange(len(out))
            j = min(len(out), i + rng.randint(1, 16))
            out[i:i] = out[i:j]
        elif op == 5 and out:  # truncate
            del out[rng.randint(0, len(out)):]
        elif op == 6:  # append interesting bytes
            out += rng.choice(
                [b"\x00", b"\xff\xff", b"'", b'"', b",", b"\n", b"\r\n",
                 b"9" * 24, b"(", b"SELECT", b"UNION"])
    return bytes(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--per-seed", type=int, default=8)
    parser.add_argument("seeds", nargs="+")
    args = parser.parse_args()

    rng = random.Random(args.seed)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    corpus = [pathlib.Path(p).read_bytes() for p in args.seeds]
    n = 0
    for data in corpus:
        for _ in range(args.per_seed):
            if rng.random() < 0.2 and len(corpus) > 1:  # splice two seeds
                other = rng.choice(corpus)
                cut_a = rng.randint(0, len(data))
                cut_b = rng.randint(0, len(other))
                derived = data[:cut_a] + other[cut_b:]
            else:
                derived = data
            (out_dir / f"m{n:04d}").write_bytes(mutate(derived, rng))
            n += 1


if __name__ == "__main__":
    main()
