// pcdbd — the pcdb query-serving daemon.
//
// Serves the paper's maintenance example database (src/workloads) over
// the wire protocol documented in docs/SERVER.md: concurrent clients,
// per-request deadlines/budgets, an answer cache, and admission control.
//
//   pcdbd [--port N] [--host H] [--eval-threads N] [--max-inflight N]
//         [--max-queue N] [--max-connections N] [--cache-mb N]
//         [--no-cache] [--rows-per-batch N] [--metrics-dump]
//         [--slow-query-ms N] [--max-pending-writes N] [--tenant-quota N]
//         [--tenant-tier NAME=N]... [--wal-dir PATH] [--no-wal]
//         [--checkpoint-interval N] [--drain-timeout-ms N]
//         [--read-quota N] [--shard-id N] [--num-shards N]
//         [--hashed T1,T2,...]
//
// --shard-id/--num-shards/--hashed run the daemon as one shard of a
// distributed fleet behind pcdb_coord (docs/DISTRIBUTED.md): the seed
// database's hashed tables are cut down to this shard's rows and
// pattern statements before serving, writes to hashed tables are
// filtered to owned rows/patterns, and SHARD_INFO reports the
// placement so the coordinator can verify its wiring.
//
// With --port 0 (the default) an ephemeral port is bound; the single
// line "pcdbd listening on HOST:PORT" on stdout announces it (tools/
// ci.sh parses that line).
//
// --wal-dir enables the durable write path (docs/DURABILITY.md): every
// acked INGEST/PUNCTUATE is fsync'd to a write-ahead log before it
// applies, and startup replays checkpoint + WAL tail, so a kill -9
// loses nothing that was acknowledged. --checkpoint-interval N
// checkpoints automatically every N applied writes (0 = only explicit
// CHECKPOINT frames and the final drain checkpoint). --no-wal forces
// the pre-durability in-memory behaviour even if a wrapper script
// passed --wal-dir earlier on the command line.
//
// SIGINT/SIGTERM drain gracefully via the self-pipe pattern: the
// handler only calls Server::RequestDrain() (async-signal-safe — an
// atomic store plus one write(2) to the event loop's wake pipe), the
// event loop stops accepting, answers everything in flight, the writer
// finishes its batch, a final checkpoint is taken (when a WAL is
// configured), and the process exits 0.
// --metrics-dump prints the final metrics/cache JSON on shutdown.
// --slow-query-ms logs any query at or over the threshold as a
// structured warn line on stderr (common/log.h). Diagnostics go to
// stderr as JSON lines; PCDB_LOG_LEVEL controls verbosity.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/log.h"
#include "dist/partition.h"
#include "obs/trace.h"
#include "server/server.h"
#include "workloads/maintenance_example.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
pcdb::Server* g_server = nullptr;

// Installed for SIGINT/SIGTERM after g_server is set. RequestDrain is
// async-signal-safe by contract (no locks, no allocation, no logging),
// so the drain path starts inside the handler instead of racing a
// process-teardown against the writer job.
void HandleSignal(int /*signum*/) {
  g_stop = 1;
  if (g_server != nullptr) g_server->RequestDrain();
}

// --flag=V or --flag V; returns true and advances *i on a match.
bool ParseUint(int argc, char** argv, int* i, const char* flag,
               uint64_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = std::strtoull(arg + flag_len + 1, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = std::strtoull(argv[*i + 1], nullptr, 10);
    ++*i;
    return true;
  }
  return false;
}

bool ParseString(int argc, char** argv, int* i, const char* flag,
                 std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  pcdb::ServerOptions options;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    uint64_t n = 0;
    std::string s;
    if (ParseString(argc, argv, &i, "--host", &s)) {
      options.host = s;
    } else if (ParseUint(argc, argv, &i, "--port", &n)) {
      options.port = static_cast<uint16_t>(n);
    } else if (ParseUint(argc, argv, &i, "--eval-threads", &n)) {
      options.eval_threads = n;
    } else if (ParseUint(argc, argv, &i, "--eval-threads-per-query", &n)) {
      options.eval_threads_per_query = n;
    } else if (ParseUint(argc, argv, &i, "--max-inflight", &n)) {
      options.max_inflight = n;
    } else if (ParseUint(argc, argv, &i, "--max-queue", &n)) {
      options.max_queued_per_connection = n;
    } else if (ParseUint(argc, argv, &i, "--max-connections", &n)) {
      options.max_connections = n;
    } else if (ParseUint(argc, argv, &i, "--cache-mb", &n)) {
      options.cache.max_bytes = static_cast<size_t>(n) << 20;
    } else if (ParseUint(argc, argv, &i, "--rows-per-batch", &n)) {
      options.rows_per_batch = n;
    } else if (ParseUint(argc, argv, &i, "--slow-query-ms", &n)) {
      options.slow_query_millis = static_cast<double>(n);
    } else if (ParseUint(argc, argv, &i, "--max-pending-writes", &n)) {
      options.max_pending_writes = n;
    } else if (ParseUint(argc, argv, &i, "--tenant-quota", &n)) {
      options.tenant_write_quota = n;
    } else if (ParseUint(argc, argv, &i, "--read-quota", &n)) {
      options.tenant_read_quota = n;
    } else if (ParseUint(argc, argv, &i, "--shard-id", &n)) {
      options.shard_id = static_cast<uint32_t>(n);
    } else if (ParseUint(argc, argv, &i, "--num-shards", &n)) {
      options.num_shards = static_cast<uint32_t>(n);
    } else if (ParseString(argc, argv, &i, "--hashed", &s)) {
      pcdb::Result<std::set<std::string>> hashed = pcdb::ParseHashedSpec(s);
      if (!hashed.ok()) {
        pcdb::LogError("bad --hashed spec")
            .Str("error", hashed.status().ToString());
        return 2;
      }
      options.hashed_tables = *std::move(hashed);
    } else if (ParseString(argc, argv, &i, "--tenant-tier", &s)) {
      // NAME=N; repeatable. Unlisted tenants are tier 0.
      const size_t eq = s.rfind('=');
      if (eq == std::string::npos) {
        pcdb::LogError("--tenant-tier wants NAME=N").Str("got", s);
        return 2;
      }
      options.tenant_tiers[s.substr(0, eq)] = static_cast<uint32_t>(
          std::strtoul(s.c_str() + eq + 1, nullptr, 10));
    } else if (ParseString(argc, argv, &i, "--wal-dir", &s)) {
      options.wal_dir = s;
    } else if (ParseUint(argc, argv, &i, "--checkpoint-interval", &n)) {
      options.checkpoint_interval = n;
    } else if (ParseUint(argc, argv, &i, "--drain-timeout-ms", &n)) {
      options.drain_timeout_millis = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--no-wal") == 0) {
      options.wal_dir.clear();
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.enable_cache = false;
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdbd [--port N] [--host H] [--eval-threads N]\n"
          "             [--max-inflight N] [--max-queue N]\n"
          "             [--max-connections N] [--cache-mb N] [--no-cache]\n"
          "             [--rows-per-batch N] [--metrics-dump]\n"
          "             [--slow-query-ms N] [--max-pending-writes N]\n"
          "             [--tenant-quota N] [--tenant-tier NAME=N]...\n"
          "             [--wal-dir PATH] [--no-wal]\n"
          "             [--checkpoint-interval N] [--drain-timeout-ms N]\n"
          "             [--read-quota N] [--shard-id N] [--num-shards N]\n"
          "             [--hashed T1,T2,...]\n");
      return 0;
    } else {
      pcdb::LogError("unknown flag (see --help)").Str("flag", argv[i]);
      return 2;
    }
  }

  if (options.shard_id >= options.num_shards) {
    pcdb::LogError("--shard-id must be < --num-shards")
        .Unum("shard_id", options.shard_id)
        .Unum("num_shards", options.num_shards);
    return 2;
  }

  pcdb::AnnotatedDatabase adb = pcdb::MakeMaintenanceDatabase();
  if (options.num_shards > 1) {
    // Cut the seed database down to this shard's slice before serving:
    // hashed tables keep only owned rows and owned pattern statements
    // (docs/DISTRIBUTED.md); replicated tables stay whole.
    pcdb::PartitionMap map;
    map.num_shards = options.num_shards;
    map.hashed = options.hashed_tables;
    pcdb::Status cut = pcdb::PartitionDatabase(&adb, map, options.shard_id);
    if (!cut.ok()) {
      pcdb::LogError("partitioning seed database failed")
          .Str("error", cut.ToString());
      return 2;
    }
  }

  // Label this process's trace dump so tools/trace_merge.py can name
  // the row in a stitched multi-process timeline.
  pcdb::Tracer::Global().SetProcessLabel(
      options.num_shards > 1
          ? "pcdbd.shard" + std::to_string(options.shard_id)
          : "pcdbd");

  pcdb::Server server(std::move(adb), options);
  pcdb::Status started = server.Start();
  if (!started.ok()) {
    pcdb::LogError("startup failed").Str("error", started.ToString());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Machine-parsed announcement (ci.sh and the tests grep this exact
  // line); it stays plain stdout, not a log line.
  std::printf("pcdbd listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  pcdb::LogInfo("pcdbd started")
      .Str("host", options.host)
      .Unum("port", server.port())
      .Unum("eval_threads", options.eval_threads)
      .Float("slow_query_ms", options.slow_query_millis);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The handler already kicked RequestDrain(); Drain() waits for the
  // event loop to answer everything it owes, stops the pools, and takes
  // the final checkpoint when a WAL is configured.
  pcdb::LogInfo("shutting down (drain)");
  server.Drain();
  if (metrics_dump) {
    std::printf("%s\n", server.StatsJson().c_str());
  }
  return 0;
}
