#!/usr/bin/env bash
# CI entry point. Stages:
#   tools/ci.sh            # tier-1 build + full ctest, then TSan parallel suite
#   tools/ci.sh --asan     # additionally run the full suite under ASan/UBSan
#   tools/ci.sh analyze    # static stages: pcdb-analyze checker framework
#                          # (SARIF archived at build/analyze/analyze.sarif),
#                          # golden-fixture harness, clang-tidy, TSA build,
#                          # negative-compile check (clang stages self-skip
#                          # when clang/clang-tidy are not installed).
#                          # "lint" is accepted as a compatibility alias.
#   tools/ci.sh fuzz       # build fuzz harnesses under ASan/UBSan and smoke
#                          # each for ~30s (libFuzzer under clang; corpus +
#                          # deterministic mutation replay elsewhere)
#   tools/ci.sh server     # network subsystem: server unit/e2e suites, then
#                          # a live pcdbd smoke (ephemeral port, client ping/
#                          # query/stats, loadgen burst, graceful SIGTERM)
#   tools/ci.sh faults     # fault-injection matrix: rerun the suite with
#                          # benign sleep failpoints (results must be
#                          # unchanged), then arm every compiled-in site
#                          # with error/throw actions and require that no
#                          # test binary dies abnormally
#   tools/ci.sh ingest     # streaming write path: write-path suites, a live
#                          # ingest/punctuate smoke through pcdb_client, then
#                          # two mixed loadgen runs (punctuation-heavy vs
#                          # row-ingest-heavy) whose cache-hit-rate delta
#                          # demonstrates signature-keyed invalidation;
#                          # results land in BENCH_PR6.json
#   tools/ci.sh crash      # durable write path: WAL/checkpoint suites, then
#                          # a live kill -9 harness — scripted ingests killed
#                          # at a randomized offset (plain and under wal.*
#                          # failpoints), restart, every acked row must be
#                          # present; torn-tail fixture; duplicate-retry
#                          # exactly-once; SIGTERM drain checkpoint; group-
#                          # commit throughput (wal off vs on) in
#                          # BENCH_PR8.json
#   tools/ci.sh dist       # distributed mode: dist suites, then a live
#                          # 3-shard fleet behind pcdb_coord — serial vs
#                          # distributed answer differential, write fan-out
#                          # with WAL-backed shards, kill -9 of one shard
#                          # mid-load (queries must degrade to Unavailable,
#                          # never a silently wrong completeness verdict),
#                          # restart + convergence; coordinator overhead and
#                          # 3-shard scaling land in BENCH_PR9.json
#   tools/ci.sh obs        # observability: full suite under PCDB_TRACE=1,
#                          # validate the Chrome-trace dumps with
#                          # tools/check_trace.py, then measure loadgen
#                          # p50/p95/p99 with tracing off vs on and record
#                          # the overhead in BENCH_PR5.json (p95 overhead
#                          # must stay within 5% or 0.5ms, whichever is
#                          # larger)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FUZZ_SECONDS="${FUZZ_SECONDS:-30}"

run_tier1() {
  echo "=== tier-1: release build + full ctest ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS"
  ctest --preset release -j "$JOBS"

  echo "=== TSan: parallel + fault-injection + governed-context suites ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" \
    --target parallel_test fault_injection_test exec_context_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/fault_injection_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/exec_context_test
}

run_asan() {
  echo "=== ASan/UBSan: full test suite ==="
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan -j "$JOBS"
}

run_analyze() {
  echo "=== analyze: pcdb-analyze (checker framework) ==="
  # Human-readable findings gate the stage; the SARIF report is archived
  # next to the stage log for CI systems that ingest it.
  mkdir -p build/analyze
  python3 tools/analyze/pcdb_analyze.py | tee build/analyze/analyze.log
  python3 tools/analyze/pcdb_analyze.py --format sarif \
    --output build/analyze/analyze.sarif
  echo "SARIF report: build/analyze/analyze.sarif"

  echo "=== analyze: golden-fixture harness ==="
  python3 tests/analyze/golden_test.py

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== analyze: thread-safety analysis build (clang -Wthread-safety -Werror) ==="
    cmake --preset tsa
    cmake --build --preset tsa -j "$JOBS"

    echo "=== analyze: negative-compile check (mis-locked code must be rejected) ==="
    if clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror \
        tests/thread_safety_negative.cc 2>/dev/null; then
      echo "ERROR: tests/thread_safety_negative.cc compiled cleanly — the" >&2
      echo "thread-safety annotations are not catching lock misuse." >&2
      exit 1
    fi
    echo "rejected as expected"
  else
    echo "--- clang++ not found: skipping TSA build + negative-compile check"
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== analyze: clang-tidy ==="
    cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build -quiet "src/.*\.cc$"
    else
      # shellcheck disable=SC2046
      clang-tidy -p build --quiet $(find src -name '*.cc')
    fi
  else
    echo "--- clang-tidy not found: skipping"
  fi

  echo "analyze OK"
}

run_fuzz() {
  echo "=== fuzz: build harnesses under ASan/UBSan ==="
  cmake --preset fuzz
  cmake --build --preset fuzz -j "$JOBS" \
    --target fuzz_sql fuzz_csv fuzz_algebra_diff fuzz_frames fuzz_cache_key \
             fuzz_wal fuzz_shard_route

  local have_libfuzzer=0
  if grep -q "PCDB_HAVE_LIBFUZZER:INTERNAL=1" build-fuzz/CMakeCache.txt \
      2>/dev/null; then
    have_libfuzzer=1
  fi

  for target in fuzz_sql:sql fuzz_csv:csv fuzz_algebra_diff:algebra \
      fuzz_frames:frames fuzz_cache_key:cache_key fuzz_wal:wal \
      fuzz_shard_route:shard_route; do
    local bin="${target%%:*}" corpus="fuzz/corpus/${target##*:}"
    echo "=== fuzz: $bin (${FUZZ_SECONDS}s smoke) ==="
    if [[ "$have_libfuzzer" == 1 ]]; then
      "./build-fuzz/fuzz/$bin" -max_total_time="$FUZZ_SECONDS" \
        -print_final_stats=1 "$corpus"
    else
      # Portable smoke: replay the checked-in corpus, then a budgeted
      # loop of deterministically mutated inputs (fixed seed per round,
      # so failures reproduce with the same round number).
      "./build-fuzz/fuzz/$bin" "$corpus"/*
      local deadline=$((SECONDS + FUZZ_SECONDS)) round=0
      local mutated
      mutated="$(mktemp -d)"
      while (( SECONDS < deadline )); do
        python3 tools/fuzz_mutate.py --seed "$round" --out "$mutated" \
          "$corpus"/*
        "./build-fuzz/fuzz/$bin" "$mutated"/*
        round=$((round + 1))
      done
      rm -rf "$mutated"
      echo "$bin: $round mutation rounds"
    fi
  done
  echo "fuzz OK"
}

run_server() {
  echo "=== server: build binaries + unit/e2e suites ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target protocol_test metrics_test answer_cache_test server_test \
             pcdbd pcdb_client pcdb_loadgen
  ./build/tests/protocol_test
  ./build/tests/metrics_test
  ./build/tests/answer_cache_test
  ./build/tests/server_test

  echo "=== server: daemon smoke on an ephemeral port ==="
  local logfile daemon port="" i
  logfile="$(mktemp)"
  ./build/tools/pcdbd --port 0 >"$logfile" 2>&1 &
  daemon=$!
  for i in $(seq 1 100); do
    port="$(sed -n 's/^pcdbd listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$logfile")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: pcdbd never announced its listening port" >&2
    cat "$logfile" >&2
    kill "$daemon" 2>/dev/null || true
    exit 1
  fi
  ./build/tools/pcdb_client --port "$port" --ping | grep -qx pong
  ./build/tools/pcdb_client --port "$port" \
    --sql "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID" \
    >/dev/null
  ./build/tools/pcdb_loadgen --port "$port" --connections 8 --requests 200
  ./build/tools/pcdb_client --port "$port" --stats | grep -q cache_hits

  kill -TERM "$daemon"
  local rc=0
  wait "$daemon" || rc=$?
  rm -f "$logfile"
  if (( rc != 0 )); then
    echo "ERROR: pcdbd exited $rc on SIGTERM (want graceful 0)" >&2
    exit 1
  fi
  echo "server OK"
}

run_faults() {
  echo "=== faults: injected-failpoint matrix ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS"

  # Dedicated coverage first: the deterministic site x action matrix and
  # the deadline/budget/degradation contracts.
  ./build/tests/fault_injection_test
  ./build/tests/exec_context_test

  echo "--- sleep-action injection: the full suite must pass unchanged"
  PCDB_FAILPOINTS="pool.dispatch=sleep(1);minimize.pattern=prob(0.01,7):sleep(1)" \
    ctest --preset release -j "$JOBS"

  echo "--- error/throw injection: tests may fail, the process may not die"
  # Keep this list in sync with Failpoints::AllSites()
  # (fault_injection_test cross-checks the same list programmatically).
  # pool.dispatch is deliberately absent here: the void ParallelFor API —
  # used directly by parallel_test — documents task failure as a
  # programming error (PCDB_CHECK), so arming that site breaks its
  # precondition. Governed entry points route all fallible fan-outs
  # through TryParallelFor*, and fault_injection_test above injects
  # pool.dispatch faults through those paths.
  # pcdb-analyze: allow(failpoint-drift): pool.dispatch is exercised via TryParallelFor in fault_injection_test; arming it here would violate ParallelFor's documented precondition
  local sites="csv.read csv.record eval.operator eval.join.probe \
    minimize.pattern minimize.shard annotated.operator \
    server.accept server.read server.read.short server.decode server.write \
    server.ingest wal.open wal.append wal.append.short wal.corrupt \
    wal.fsync checkpoint.write checkpoint.rename recovery.record"
  local bins="relational_test minimize_test annotated_eval_test parallel_test \
    protocol_test server_test wal_test"
  local action site spec bin rc
  for action in "error" "error(timeout)" "throw"; do
    spec=""
    for site in $sites; do spec="${spec}${site}=${action};"; done
    for bin in $bins; do
      rc=0
      PCDB_FAILPOINTS="$spec" "./build/tests/$bin" >/dev/null 2>&1 || rc=$?
      # gtest exits 0 (all passed) or 1 (assertions failed; expected when
      # every workload gets a fault injected). Anything else — an abort,
      # an uncaught exception, a signal — means a failpoint escaped the
      # Status channel.
      if (( rc > 1 )); then
        echo "ERROR: $bin died (exit $rc) under PCDB_FAILPOINTS=$spec" >&2
        exit 1
      fi
      echo "$bin under '$action' injection: exit $rc (clean)"
    done
  done
  echo "faults OK"
}

# Starts pcdbd (inheriting the caller's PCDB_TRACE* environment), runs
# one loadgen burst against it, echoes the loadgen JSON line, and stops
# the daemon. The cache is disabled so every request evaluates — cached
# answers would hide the tracing overhead this stage measures.
obs_loadgen_run() {
  local logfile daemon port="" i
  logfile="$(mktemp)"
  ./build/tools/pcdbd --port 0 --no-cache >"$logfile" 2>/dev/null &
  daemon=$!
  for i in $(seq 1 100); do
    port="$(sed -n 's/^pcdbd listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$logfile")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: pcdbd never announced its listening port" >&2
    kill "$daemon" 2>/dev/null || true
    return 1
  fi
  ./build/tools/pcdb_loadgen --port "$port" --connections 8 \
    --requests "${OBS_LOADGEN_REQUESTS:-2000}" \
    | grep '"bench":"pcdbd_loadgen"'
  kill -TERM "$daemon"
  wait "$daemon" || true
  rm -f "$logfile"
}

run_obs() {
  echo "=== obs: build + full suite under PCDB_TRACE=1 ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS"

  local tracedir
  tracedir="$(mktemp -d)"
  PCDB_TRACE=1 PCDB_TRACE_DIR="$tracedir" ctest --preset release -j "$JOBS"

  echo "=== obs: validate the Chrome-trace dumps ==="
  python3 tools/check_trace.py "$tracedir" --min-events 1000
  rm -rf "$tracedir"

  echo "=== obs: loadgen overhead, tracing off vs on ==="
  # Interleaved best-of-3 pairs: a single run's percentiles swing by
  # tens of percent on a shared machine, so each mode takes the best of
  # three runs before comparing (standard latency-benchmark practice —
  # the minimum is the least noise-contaminated estimate).
  local off_runs="" on_runs="" dump_dir i
  dump_dir="$(mktemp -d)"
  for i in 1 2 3; do
    off_runs="$off_runs$(obs_loadgen_run)"$'\n'
    on_runs="$on_runs$(PCDB_TRACE=1 PCDB_TRACE_DIR="$dump_dir" \
      obs_loadgen_run)"$'\n'
  done
  python3 tools/check_trace.py "$dump_dir" --min-events 100
  rm -rf "$dump_dir"

  if ! python3 - "$off_runs" "$on_runs" > BENCH_PR5.json <<'PY'
import json, sys
def parse(blob):
    return [json.loads(line) for line in blob.splitlines() if line.strip()]
def best(runs, key):
    return min(r[key] for r in runs)
off, on = parse(sys.argv[1]), parse(sys.argv[2])
def pct(base, new):
    return (new - base) / base * 100.0 if base > 0 else 0.0
def mode_summary(runs):
    return {
        "p50_ms": best(runs, "median_ms"), "p95_ms": best(runs, "p95_ms"),
        "p99_ms": best(runs, "p99_ms"),
        "qps": max(r["qps"] for r in runs),
        "runs": [{"p50_ms": r["median_ms"], "p95_ms": r["p95_ms"],
                  "p99_ms": r["p99_ms"], "qps": r["qps"]} for r in runs],
    }
out = {
    "bench": "pr5_tracing_overhead",
    "workload": {"requests": off[0]["n"], "connections": off[0]["threads"],
                 "cache": "disabled", "runs_per_mode": len(off),
                 "comparison": "best-of-runs per mode"},
    "tracing_off": mode_summary(off),
    "tracing_on": mode_summary(on),
    "p50_overhead_pct": round(
        pct(best(off, "median_ms"), best(on, "median_ms")), 2),
    "p95_overhead_pct": round(pct(best(off, "p95_ms"), best(on, "p95_ms")),
                              2),
    "p99_overhead_pct": round(pct(best(off, "p99_ms"), best(on, "p99_ms")),
                              2),
}
json.dump(out, sys.stdout, indent=2)
print()
# Gate: p95 overhead over 5% fails, with a 0.5ms absolute floor so
# sub-millisecond baselines don't fail on scheduler noise.
bad = (out["p95_overhead_pct"] > 5.0
       and best(on, "p95_ms") - best(off, "p95_ms") > 0.5)
sys.exit(1 if bad else 0)
PY
  then
    cat BENCH_PR5.json >&2
    echo "ERROR: tracing p95 overhead exceeds 5% (and 0.5ms)" >&2
    exit 1
  fi
  cat BENCH_PR5.json

  echo "=== obs: fleet trace — 3 shards + pcdb_coord, merge + stitch ==="
  local fleet_dir fleet_ports=() fleet_coord s
  fleet_dir="$(mktemp -d)"
  export PCDB_TRACE=1 PCDB_TRACE_DIR="$fleet_dir"
  for s in 0 1 2; do
    dist_start pcdbd --port 0 --shard-id "$s" --num-shards 3 \
      --hashed Warnings
    fleet_ports[s]="$DIST_PORT"
  done
  dist_start pcdb_coord --shards \
    "127.0.0.1:${fleet_ports[0]},127.0.0.1:${fleet_ports[1]},127.0.0.1:${fleet_ports[2]}" \
    --hashed Warnings
  fleet_coord="$DIST_PORT"
  unset PCDB_TRACE PCDB_TRACE_DIR
  # A traced broadcast query, a merged EXPLAIN ANALYZE profile, and the
  # fleet-aggregated STATS payload — the three fleet views from
  # docs/OBSERVABILITY.md "Tracing a fleet query".
  ./build/tools/pcdb_client --port "$fleet_coord" \
    --sql "SELECT * FROM Warnings WHERE week=2" >/dev/null
  ./build/tools/pcdb_client --port "$fleet_coord" --profile \
    --sql "SELECT * FROM Warnings WHERE week=2" \
    | grep -q '"distributed":true'
  ./build/tools/pcdb_client --port "$fleet_coord" --stats \
    | grep -q '"fleet"'
  obs_dist_stop_fleet
  python3 tools/trace_merge.py "$fleet_dir" --out "$fleet_dir/merged.json"
  python3 tools/check_trace.py "$fleet_dir/merged.json" --stitched \
    --min-events 50
  rm -rf "$fleet_dir"

  echo "=== obs: coordinator-path tracing overhead (BENCH_PR10.json) ==="
  rm -f BENCH_PR10.json
  local dump_dir10
  dump_dir10="$(mktemp -d)"
  obs_dist_bench_fleet 3
  PCDB_TRACE=1 PCDB_TRACE_DIR="$dump_dir10" obs_dist_bench_fleet 3
  rm -rf "$dump_dir10"
  if ! python3 - <<'PY'
import json
runs = [json.loads(line) for line in open("BENCH_PR10.json")
        if line.strip()]
runs = [r for r in runs if r.get("bench") == "pcdbd_loadgen"]
assert len(runs) == 6, f"expected 3 off + 3 on runs, got {len(runs)}"
off, on = runs[:3], runs[3:]
def best(rs, key):
    return min(r[key] for r in rs)
def pct(base, new):
    return (new - base) / base * 100.0 if base > 0 else 0.0
def mode_summary(rs):
    return {"p50_ms": best(rs, "median_ms"), "p95_ms": best(rs, "p95_ms"),
            "p99_ms": best(rs, "p99_ms"), "qps": max(r["qps"] for r in rs)}
summary = {
    "bench": "pr10_dist_tracing_overhead",
    "commit": off[0]["commit"],
    "date": off[0]["date"],
    "workload": {"requests": off[0]["n"], "connections": off[0]["threads"],
                 "deployment": "pcdb_coord over 3 pcdbd shards, cache off, "
                               "row-seeded Warnings",
                 "comparison": "best-of-3 per mode"},
    "tracing_off": mode_summary(off),
    "tracing_on": mode_summary(on),
    "p50_overhead_pct": round(
        pct(best(off, "median_ms"), best(on, "median_ms")), 2),
    "p95_overhead_pct": round(
        pct(best(off, "p95_ms"), best(on, "p95_ms")), 2),
}
with open("BENCH_PR10.json", "a") as f:
    json.dump(summary, f)
    f.write("\n")
print(json.dumps(summary, indent=2))
# Gate as in BENCH_PR5: p95 overhead over 5% fails, with a 0.5 ms
# absolute floor so sub-millisecond baselines ignore scheduler noise.
# Any request errors in any leg fail outright.
bad = (summary["p95_overhead_pct"] > 5.0
       and best(on, "p95_ms") - best(off, "p95_ms") > 0.5)
bad = bad or any(r.get("errors", 0) or r.get("write_errors", 0)
                 for r in runs)
raise SystemExit(1 if bad else 0)
PY
  then
    cat BENCH_PR10.json >&2
    echo "ERROR: coordinator-path tracing p95 overhead exceeds 5%" \
      "(and 0.5ms), or a bench leg saw errors" >&2
    exit 1
  fi
  echo "obs OK"
}

# Stops the current dist_start fleet with SIGTERM and waits, so the
# tracer's at-exit dump runs (dist_cleanup's kill -9 skips it), then
# reaps the log files.
obs_dist_stop_fleet() {
  local pid
  for pid in "${DIST_PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${DIST_PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  dist_cleanup
}

# Starts a fresh 3-shard fleet (cache off, so every request evaluates)
# behind pcdb_coord, records $1 loadgen bursts through the coordinator
# into BENCH_PR10.json, and stops the fleet with SIGTERM. The caller's
# PCDB_TRACE/PCDB_TRACE_DIR environment decides traced vs untraced.
#
# The workload database holds only a handful of Warnings rows, which
# would make the fixed per-operator span cost look like a huge fraction
# of a microscopic request. Each fleet is therefore seeded with
# OBS_DIST_SEED_ROWS synthetic rows (one batched retract-policy ingest
# through the coordinator; weeks >= 3, so the bench query's week=2
# filter keeps the answer unchanged while every scan pays the
# realistic per-row cost), then warmed with one untimed burst so both
# modes record at their steady state.
obs_dist_bench_fleet() {  # runs
  local s i r bench_ports=() bench_coord row_args=()
  local seed_rows="${OBS_DIST_SEED_ROWS:-4000}"
  for s in 0 1 2; do
    dist_start pcdbd --port 0 --shard-id "$s" --num-shards 3 \
      --hashed Warnings --no-cache
    bench_ports[s]="$DIST_PORT"
  done
  dist_start pcdb_coord --shards \
    "127.0.0.1:${bench_ports[0]},127.0.0.1:${bench_ports[1]},127.0.0.1:${bench_ports[2]}" \
    --hashed Warnings
  bench_coord="$DIST_PORT"
  for r in $(seq 1 "$seed_rows"); do
    row_args+=(--row "w$((r % 7)),$((3 + r % 997)),sw$r,seed")
  done
  ./build/tools/pcdb_client --port "$bench_coord" --policy retract \
    --ingest Warnings "${row_args[@]}" | grep -q "ingested=$seed_rows"
  ./build/tools/pcdb_loadgen --endpoints "127.0.0.1:$bench_coord" \
    --connections 8 --requests "${OBS_LOADGEN_REQUESTS:-2000}" >/dev/null
  for i in $(seq 1 "$1"); do
    tools/bench_record.sh --out BENCH_PR10.json ./build/tools/pcdb_loadgen \
      --endpoints "127.0.0.1:$bench_coord" --connections 8 \
      --requests "${OBS_LOADGEN_REQUESTS:-2000}"
  done
  obs_dist_stop_fleet
}

# Starts pcdbd with the cache ON, runs one mixed loadgen burst with the
# given extra flags, echoes the loadgen JSON line, stops the daemon. A
# fresh daemon per run keeps cache state from leaking between mixes.
ingest_loadgen_run() {
  local logfile daemon port="" i
  logfile="$(mktemp)"
  ./build/tools/pcdbd --port 0 >"$logfile" 2>/dev/null &
  daemon=$!
  for i in $(seq 1 100); do
    port="$(sed -n 's/^pcdbd listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$logfile")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: pcdbd never announced its listening port" >&2
    kill "$daemon" 2>/dev/null || true
    return 1
  fi
  ./build/tools/pcdb_loadgen --port "$port" --connections 8 \
    --requests "${INGEST_LOADGEN_REQUESTS:-2000}" "$@" \
    | grep '"bench":"pcdbd_loadgen"'
  kill -TERM "$daemon"
  wait "$daemon" || true
  rm -f "$logfile"
}

run_ingest() {
  echo "=== ingest: build + write-path suites ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target protocol_test answer_cache_test server_test feed_test \
             fault_injection_test pcdbd pcdb_client pcdb_loadgen
  ./build/tests/protocol_test
  ./build/tests/answer_cache_test
  ./build/tests/feed_test
  ./build/tests/server_test
  ./build/tests/fault_injection_test \
    --gtest_filter='*CoveringWorkloads*:*EverySiteFires*'

  echo "=== ingest: live INGEST/PUNCTUATE smoke through pcdb_client ==="
  local logfile daemon port="" i
  logfile="$(mktemp)"
  ./build/tools/pcdbd --port 0 --tenant-quota 64 >"$logfile" 2>&1 &
  daemon=$!
  for i in $(seq 1 100); do
    port="$(sed -n 's/^pcdbd listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$logfile")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: pcdbd never announced its listening port" >&2
    cat "$logfile" >&2
    kill "$daemon" 2>/dev/null || true
    exit 1
  fi
  ./build/tools/pcdb_client --port "$port" --ingest Warnings \
    --row "Thu,3,tw90,ci smoke" --row "Fri,4,tw91,ci smoke" \
    | grep -q 'ingested=2'
  ./build/tools/pcdb_client --port "$port" --punctuate Warnings \
    --fields "ci,*,*,*" | grep -q 'punctuations=1'
  # A row violating the new promise: rejected under the default policy,
  # admitted (with the promise withdrawn) under --policy retract.
  ./build/tools/pcdb_client --port "$port" --ingest Warnings \
    --row "ci,9,tw92,late" | grep -q 'rejected=1'
  ./build/tools/pcdb_client --port "$port" --policy retract \
    --ingest Warnings --row "ci,9,tw92,late" | grep -q 'retracted=1'
  ./build/tools/pcdb_client --port "$port" --stats \
    | grep -q '"ingest_rows_total":3'
  kill -TERM "$daemon"
  local rc=0
  wait "$daemon" || rc=$?
  rm -f "$logfile"
  if (( rc != 0 )); then
    echo "ERROR: pcdbd exited $rc on SIGTERM (want graceful 0)" >&2
    exit 1
  fi

  echo "=== ingest: cache precision, punctuation-mix vs row-ingest mix ==="
  # Both mixes disturb the Warnings table at the same 20% op rate. The
  # punctuation mix adds day-constant completeness patterns — signature
  # {day}, incomparable with the query mix's {week} constant mask — so
  # signature-keyed invalidation preserves cached answers. The row mix
  # bumps the table epoch wholesale and pays real misses. The gap
  # between the two hit rates is the precision win.
  local punct_run ingest_run
  punct_run="$(ingest_loadgen_run --punctuate-pct 20)"
  ingest_run="$(ingest_loadgen_run --write-pct 20)"

  if ! python3 - "$punct_run" "$ingest_run" > BENCH_PR6.json <<'PY'
import json, os, sys
punct, ingest = (json.loads(a) for a in sys.argv[1:3])
def summary(r):
    keys = ("cache_hit_rate", "qps", "median_ms", "p95_ms", "p99_ms",
            "writes", "write_errors", "write_p95_ms")
    return {k: r[k] for k in keys if k in r}
delta = punct["cache_hit_rate"] - ingest["cache_hit_rate"]
out = {
    "bench": "pr6_signature_invalidation_precision",
    "workload": {"requests": punct["n"], "connections": punct["threads"],
                 "write_op_pct": 20,
                 "query": "Q_hw (Warnings constant mask {week})"},
    "punctuate_mix": summary(punct),
    "row_ingest_mix": summary(ingest),
    "cache_hit_rate_delta": round(delta, 4),
}
for name in ("BENCH_PR4.json", "BENCH_PR5.json"):
    # Prior bench files may hold one object or one object per line.
    if os.path.exists(name):
        with open(name) as f:
            blob = f.read()
        try:
            base = json.loads(blob)
        except ValueError:
            base = json.loads(blob.splitlines()[0])
        out.setdefault("baselines", {})[name] = base.get("bench")
json.dump(out, sys.stdout, indent=2)
print()
# Gate: punctuations must be strictly cheaper than row ingest for the
# cache. If signature keying regressed, both mixes invalidate alike and
# the delta collapses to ~0.
sys.exit(0 if delta > 0.02 else 1)
PY
  then
    cat BENCH_PR6.json >&2
    echo "ERROR: punctuation mix shows no cache-hit-rate advantage over" >&2
    echo "row ingest — signature-keyed invalidation is not sparing" >&2
    echo "incomparable entries" >&2
    exit 1
  fi
  cat BENCH_PR6.json
  echo "ingest OK"
}

# Starts ./build/tools/pcdbd with the given flags in the background and
# waits for the port announcement. Sets CRASH_DAEMON (pid), CRASH_PORT,
# and CRASH_LOG (the daemon's combined output; caller removes it).
crash_start_daemon() {
  CRASH_LOG="$(mktemp)"
  ./build/tools/pcdbd "$@" >"$CRASH_LOG" 2>&1 &
  CRASH_DAEMON=$!
  local i port=""
  for i in $(seq 1 100); do
    port="$(sed -n 's/^pcdbd listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$CRASH_LOG")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: pcdbd never announced its listening port" >&2
    cat "$CRASH_LOG" >&2
    kill "$CRASH_DAEMON" 2>/dev/null || true
    exit 1
  fi
  CRASH_PORT="$port"
}

# kill -9 the current crash daemon and reap it.
crash_kill9() {
  kill -9 "$CRASH_DAEMON" 2>/dev/null || true
  wait "$CRASH_DAEMON" 2>/dev/null || true
  rm -f "$CRASH_LOG"
}

# Graceful SIGTERM; a non-zero daemon exit fails the stage.
crash_drain() {
  kill -TERM "$CRASH_DAEMON"
  local rc=0
  wait "$CRASH_DAEMON" || rc=$?
  rm -f "$CRASH_LOG"
  if (( rc != 0 )); then
    echo "ERROR: pcdbd exited $rc on SIGTERM (want graceful 0)" >&2
    exit 1
  fi
}

# One group-commit bench leg: a write-heavy loadgen burst against a
# daemon started with the given flags. Echoes the loadgen JSON line,
# then the server's stats JSON (for the records-per-fsync ratio).
crash_bench_run() {
  crash_start_daemon "$@"
  ./build/tools/pcdb_loadgen --port "$CRASH_PORT" --connections 8 \
    --requests "${CRASH_LOADGEN_REQUESTS:-2000}" --write-pct 80 \
    | grep '"bench":"pcdbd_loadgen"'
  ./build/tools/pcdb_client --port "$CRASH_PORT" --stats
  crash_drain
}

run_crash() {
  echo "=== crash: build + WAL/checkpoint/recovery suites ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target wal_test server_test fault_injection_test \
             pcdbd pcdb_client pcdb_wal_dump pcdb_loadgen
  # Torn-tail goldens, checkpoint round trips, idempotent-retry and
  # randomized differential recovery all live in wal_test.
  ./build/tests/wal_test
  ./build/tests/fault_injection_test \
    --gtest_filter='*CoveringWorkloads*:*EverySiteFires*'

  local waldir acked stats answer recovered i n
  waldir="$(mktemp -d)"
  # Seeded shell RNG: the kill offset is randomized per run yet printed,
  # so a failure reproduces by exporting CRASH_SEED.
  RANDOM="${CRASH_SEED:-$$}"
  local kill_after=$((3 + RANDOM % 15))
  echo "=== crash: kill -9 mid-ingest after $kill_after acked writes ==="
  crash_start_daemon --wal-dir "$waldir"
  acked=""
  for i in $(seq 1 "$kill_after"); do
    ./build/tools/pcdb_client --port "$CRASH_PORT" --ingest Warnings \
      --row "Mon,42,cr$i,crash run" | grep -q 'ingested=1'
    acked="$acked cr$i"
  done
  # A concurrent write burst is mid-flight when the process dies; its
  # unacked tail may land or not, but nothing acked may be lost.
  ./build/tools/pcdb_loadgen --port "$CRASH_PORT" --connections 4 \
    --requests 4000 --write-pct 50 --no-warmup >/dev/null 2>&1 &
  local burst=$!
  sleep "0.$((1 + RANDOM % 8))"
  crash_kill9
  wait "$burst" 2>/dev/null || true

  # The offline inspector reads the crashed log (possibly mid-record)
  # without mutating it; a torn tail here is expected, not an error.
  ./build/tools/pcdb_wal_dump --dir "$waldir" >/dev/null 2>&1 || true

  crash_start_daemon --wal-dir "$waldir"
  stats="$(./build/tools/pcdb_client --port "$CRASH_PORT" --stats)"
  recovered="$(sed -n 's/.*"wal_recovered_records":\([0-9]*\).*/\1/p' \
    <<<"$stats")"
  if (( recovered < kill_after )); then
    echo "ERROR: recovered $recovered WAL records, want >= $kill_after" >&2
    exit 1
  fi
  answer="$(./build/tools/pcdb_client --port "$CRASH_PORT" \
    --sql "SELECT * FROM Warnings WHERE week=42")"
  for i in $acked; do
    if ! grep -qw "$i" <<<"$answer"; then
      echo "ERROR: acked row $i lost across kill -9" >&2
      exit 1
    fi
  done
  echo "crash: $recovered records recovered; all $kill_after acked rows present"

  echo "=== crash: duplicate retry applies exactly once ==="
  ./build/tools/pcdb_client --port "$CRASH_PORT" --writer-id 4242 \
    --ingest Warnings --row "Tue,43,dup1,first" | grep -q 'duplicate=0'
  ./build/tools/pcdb_client --port "$CRASH_PORT" --writer-id 4242 \
    --ingest Warnings --row "Tue,43,dup1,first" | grep -q 'duplicate=1'
  n="$(./build/tools/pcdb_client --port "$CRASH_PORT" \
    --sql "SELECT * FROM Warnings WHERE week=43" | grep -cw dup1)"
  if [[ "$n" != 1 ]]; then
    echo "ERROR: duplicate-seq ingest applied $n times (want exactly 1)" >&2
    exit 1
  fi

  echo "=== crash: SIGTERM drain checkpoints; restart replays nothing ==="
  crash_drain
  if [[ ! -f "$waldir/CHECKPOINT" ]]; then
    echo "ERROR: graceful drain left no checkpoint" >&2
    exit 1
  fi
  crash_start_daemon --wal-dir "$waldir"
  ./build/tools/pcdb_client --port "$CRASH_PORT" --stats \
    | grep -q '"wal_recovered_records":0'
  ./build/tools/pcdb_client --port "$CRASH_PORT" \
    --sql "SELECT * FROM Warnings WHERE week=42" | grep -qw cr1

  echo "=== crash: torn-tail fixture recovers the valid prefix ==="
  crash_kill9
  # Simulate a crash mid-append: a partial record after the last durable
  # byte of the newest segment.
  local last_segment
  last_segment="$(ls "$waldir"/wal-*.log | sort | tail -1)"
  printf '\x40\x00\x00\x00torn' >>"$last_segment"
  # wal_dump exits 1 on a torn segment by design; capture first so the
  # pipefail doesn't mask the grep.
  local dump
  dump="$(./build/tools/pcdb_wal_dump --dir "$waldir" || true)"
  if ! grep -q 'torn tail' <<<"$dump"; then
    echo "ERROR: pcdb_wal_dump did not flag the torn tail" >&2
    exit 1
  fi
  crash_start_daemon --wal-dir "$waldir"
  ./build/tools/pcdb_client --port "$CRASH_PORT" --stats \
    | grep -q '"wal_torn_tail_total":1'
  ./build/tools/pcdb_client --port "$CRASH_PORT" \
    --sql "SELECT * FROM Warnings WHERE week=43" | grep -qw dup1

  echo "=== crash: kill -9 under wal.* failpoints, acked rows recover ==="
  crash_kill9
  # Error-surfacing injection only: silent-corruption sites (wal.corrupt,
  # wal.append.short) are covered deterministically by wal_test and the
  # fault matrix; arming them on a live daemon would corrupt acked bytes
  # by design and make "every acked row recovers" unverifiable.
  PCDB_FAILPOINTS="wal.fsync=prob(0.3,11):error(timeout)" \
    crash_start_daemon --wal-dir "$waldir"
  acked=""
  for i in $(seq 1 12); do
    if ./build/tools/pcdb_client --port "$CRASH_PORT" --ingest Warnings \
        --row "Wed,44,fp$i,failpoint run" 2>/dev/null \
        | grep -q 'ingested=1'; then
      acked="$acked fp$i"
    fi
  done
  crash_kill9
  crash_start_daemon --wal-dir "$waldir"
  answer="$(./build/tools/pcdb_client --port "$CRASH_PORT" \
    --sql "SELECT * FROM Warnings WHERE week=44")"
  for i in $acked; do
    if ! grep -qw "$i" <<<"$answer"; then
      echo "ERROR: acked row $i lost (wal.fsync failpoint run)" >&2
      exit 1
    fi
  done
  echo "crash: failpoint run acked$acked — all recovered"
  crash_drain
  rm -rf "$waldir"

  echo "=== crash: group-commit throughput, wal off vs on ==="
  local nowal_out wal_out waldir2
  waldir2="$(mktemp -d)"
  nowal_out="$(crash_bench_run)"
  wal_out="$(crash_bench_run --wal-dir "$waldir2")"
  rm -rf "$waldir2"
  if ! python3 - "$nowal_out" "$wal_out" > BENCH_PR8.json <<'PY'
import json, sys
def parse(blob):
    lines = [l for l in blob.splitlines() if l.strip()]
    return json.loads(lines[0]), json.loads(lines[1])  # loadgen, stats
def summary(run):
    keys = ("qps", "median_ms", "p95_ms", "writes", "write_errors",
            "write_p95_ms")
    return {k: run[k] for k in keys if k in run}
nowal, nowal_stats = parse(sys.argv[1])
wal, wal_stats = parse(sys.argv[2])
records = wal_stats["counters"].get("wal_records_total", 0)
fsyncs = wal_stats["counters"].get("wal_fsyncs_total", 0)
out = {
    "bench": "pr8_group_commit",
    "workload": {"requests": wal["n"], "connections": wal["threads"],
                 "write_op_pct": 80},
    "wal_off": summary(nowal),
    "wal_on": summary(wal),
    "wal_records_total": records,
    "wal_fsyncs_total": fsyncs,
    "records_per_fsync": round(records / fsyncs, 2) if fsyncs else None,
    "wal_on_qps_ratio": round(wal["qps"] / nowal["qps"], 3)
        if nowal.get("qps") else None,
}
json.dump(out, sys.stdout, indent=2)
print()
# Gate: the WAL leg must actually have logged and fsynced, with group
# commit never issuing more fsyncs than records.
sys.exit(0 if records > 0 and 0 < fsyncs <= records else 1)
PY
  then
    cat BENCH_PR8.json >&2
    echo "ERROR: group-commit accounting is wrong (no records, no" >&2
    echo "fsyncs, or more fsyncs than records)" >&2
    exit 1
  fi
  cat BENCH_PR8.json
  echo "crash OK"
}

# --- distributed-mode helpers -------------------------------------------

# Starts ./build/tools/$1 (pcdbd or pcdb_coord) in the background with
# the remaining args and waits for its "<name> listening on
# 127.0.0.1:PORT" announcement. Sets DIST_PORT; the pid and log file are
# pushed onto DIST_PIDS/DIST_LOGS so dist_cleanup can reap the whole
# fleet at once.
DIST_PIDS=()
DIST_LOGS=()
dist_start() {
  local name="$1"
  shift
  local logfile port="" i
  logfile="$(mktemp)"
  "./build/tools/$name" "$@" >"$logfile" 2>&1 &
  DIST_PIDS+=($!)
  DIST_LOGS+=("$logfile")
  for i in $(seq 1 200); do
    port="$(sed -n "s/^$name listening on 127\.0\.0\.1:\([0-9]*\)\$/\1/p" \
      "$logfile")"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "ERROR: $name never announced its listening port" >&2
    cat "$logfile" >&2
    dist_cleanup
    exit 1
  fi
  DIST_PORT="$port"
}

dist_cleanup() {
  local pid logfile
  for pid in "${DIST_PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  for logfile in "${DIST_LOGS[@]}"; do rm -f "$logfile"; done
  DIST_PIDS=()
  DIST_LOGS=()
}

# Order-normalized answer text for one query: rows and completeness
# patterns sorted as lines, the per-run timing footer dropped (cache
# hits and latencies legitimately differ between deployments).
dist_answer() {  # port sql
  ./build/tools/pcdb_client --port "$1" --sql "$2" | grep -v '^-- ' | sort
}

# The distributed differential: the coordinator's answer to each query —
# rows AND minimized completeness patterns — must be line-identical
# (order-normalized) with the serial single-process server's.
dist_differential() {  # coord_port direct_port
  local q serial distributed
  for q in \
      "SELECT * FROM Warnings" \
      "SELECT * FROM Warnings WHERE week=7" \
      "SELECT * FROM Teams" \
      "SELECT * FROM Maintenance M JOIN Teams T ON M.responsible=T.name" \
      "SELECT name FROM Teams UNION ALL SELECT responsible FROM Maintenance"; do
    serial="$(dist_answer "$2" "$q")"
    distributed="$(dist_answer "$1" "$q")"
    if [[ "$serial" != "$distributed" ]]; then
      echo "ERROR: distributed answer differs from serial for: $q" >&2
      diff <(echo "$serial") <(echo "$distributed") >&2 || true
      exit 1
    fi
  done
}

run_dist() {
  echo "=== dist: build + distributed suites ==="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target dist_test protocol_test server_test \
             pcdbd pcdb_coord pcdb_client pcdb_loadgen
  ./build/tests/dist_test
  ./build/tests/protocol_test --gtest_filter='*ShardInfo*:*Tenant*'
  ./build/tests/server_test --gtest_filter='*Shard*:*ReadQuota*'

  echo "=== dist: 3-shard WAL-backed fleet behind pcdb_coord ==="
  local s shard_ports=() waldirs=() coord_port direct_port
  for s in 0 1 2; do
    waldirs[s]="$(mktemp -d)"
    dist_start pcdbd --port 0 --shard-id "$s" --num-shards 3 \
      --hashed Warnings --wal-dir "${waldirs[s]}"
    shard_ports[s]="$DIST_PORT"
  done
  local shard1_pid="${DIST_PIDS[1]}"
  dist_start pcdb_coord --shards \
    "127.0.0.1:${shard_ports[0]},127.0.0.1:${shard_ports[1]},127.0.0.1:${shard_ports[2]}" \
    --hashed Warnings
  coord_port="$DIST_PORT"
  # Serial reference: one plain pcdbd holding the whole database.
  dist_start pcdbd --port 0
  direct_port="$DIST_PORT"

  echo "--- identical scripted writes against both deployments"
  # Hashed-table ingests must use the retract policy in distributed
  # mode (the coordinator refuses reject-policy ones as kUnimplemented,
  # docs/DISTRIBUTED.md §5); the serial leg mirrors it for parity.
  local i row
  for i in $(seq 1 9); do
    row="D$((i % 3)),7,dw$i,dist differential"
    ./build/tools/pcdb_client --port "$coord_port" --policy retract \
      --ingest Warnings --row "$row" | grep -q 'ingested=1'
    ./build/tools/pcdb_client --port "$direct_port" --policy retract \
      --ingest Warnings --row "$row" | grep -q 'ingested=1'
  done
  ./build/tools/pcdb_client --port "$coord_port" --punctuate Warnings \
    --fields "*,47,*,*" | grep -q 'punctuations=1'
  ./build/tools/pcdb_client --port "$direct_port" --punctuate Warnings \
    --fields "*,47,*,*" | grep -q 'punctuations=1'

  echo "--- unsound distributed operations are refused, not wrong"
  # Reject-policy (default) ingest into the hashed table: the violated
  # promise may live on a different shard than the row, so the
  # coordinator must refuse rather than let the fleet store a row and
  # keep the promise it violates.
  local rc0=0
  ./build/tools/pcdb_client --port "$coord_port" --ingest Warnings \
    --row "Mon,7,rejp,probe" >/dev/null 2>&1 || rc0=$?
  if (( rc0 == 0 )); then
    echo "ERROR: reject-policy ingest into a hashed table must be refused" >&2
    exit 1
  fi
  # Aggregates over the hashed table would merge as partial per-shard
  # results; the coordinator must refuse those too.
  rc0=0
  ./build/tools/pcdb_client --port "$coord_port" \
    --sql "SELECT COUNT(*) FROM Warnings" >/dev/null 2>&1 || rc0=$?
  if (( rc0 == 0 )); then
    echo "ERROR: COUNT(*) over a hashed table must be refused" >&2
    exit 1
  fi
  # A UNION over the hashed table loses its completeness annotation (the
  # cross-block meet needs both blocks' statements on one shard).
  rc0=0
  ./build/tools/pcdb_client --port "$coord_port" \
    --sql "SELECT day FROM Warnings WHERE week=1 UNION ALL SELECT day FROM Warnings WHERE week=2" \
    >/dev/null 2>&1 || rc0=$?
  if (( rc0 == 0 )); then
    echo "ERROR: UNION over a hashed table must be refused" >&2
    exit 1
  fi

  echo "--- serial vs distributed differential (order-normalized)"
  dist_differential "$coord_port" "$direct_port"

  echo "--- duplicate retry through the coordinator applies exactly once"
  local n
  ./build/tools/pcdb_client --port "$coord_port" --writer-id 777 \
    --policy retract --ingest Warnings --row "Mon,7,dupd,once" \
    | grep -q 'duplicate=0'
  ./build/tools/pcdb_client --port "$coord_port" --writer-id 777 \
    --policy retract --ingest Warnings --row "Mon,7,dupd,once" \
    | grep -q 'duplicate=1'
  n="$(dist_answer "$coord_port" "SELECT * FROM Warnings WHERE week=7" \
    | grep -cw dupd)"
  if [[ "$n" != 1 ]]; then
    echo "ERROR: retried ingest applied $n times (want exactly 1)" >&2
    exit 1
  fi
  # Mirror once on the serial side so the differential keeps holding.
  ./build/tools/pcdb_client --port "$direct_port" --policy retract \
    --ingest Warnings --row "Mon,7,dupd,once" | grep -q 'ingested=1'

  echo "=== dist: kill -9 one shard mid-load — degrade, never lie ==="
  # Read-only burst (no --write-pct) so the fleet's contents stay equal
  # to the serial reference for the convergence differential below.
  ./build/tools/pcdb_loadgen --port "$coord_port" --connections 4 \
    --requests 4000 --no-warmup >/dev/null 2>&1 &
  local burst=$!
  sleep 0.3
  kill -9 "$shard1_pid" 2>/dev/null || true
  wait "$shard1_pid" 2>/dev/null || true
  wait "$burst" 2>/dev/null || true

  # A query over the hashed table must now refuse with Unavailable — an
  # answer computed from two of three shards would report completeness
  # over rows it never saw (docs/DISTRIBUTED.md §6).
  local out rc=0
  out="$(./build/tools/pcdb_client --port "$coord_port" \
    --sql "SELECT * FROM Warnings" 2>&1)" || rc=$?
  if (( rc == 0 )) || ! grep -qi 'unavailable' <<<"$out"; then
    echo "ERROR: hashed-table query with shard 1 dead must fail" >&2
    echo "Unavailable; got rc=$rc: $out" >&2
    exit 1
  fi
  # Writes broadcast to every shard, so they must refuse too. The pinned
  # (writer_id, seq) makes the post-recovery retry below converge.
  rc=0
  out="$(./build/tools/pcdb_client --port "$coord_port" --writer-id 888 \
    --policy retract --ingest Warnings --row "Tue,7,lostw,retry" 2>&1)" \
    || rc=$?
  if (( rc == 0 )); then
    echo "ERROR: ingest acked with shard 1 dead" >&2
    exit 1
  fi

  echo "=== dist: restart the lost shard — convergence ==="
  # Same port (the coordinator's endpoint list is fixed), same WAL dir
  # (acked rows recover).
  dist_start pcdbd --port "${shard_ports[1]}" --shard-id 1 --num-shards 3 \
    --hashed Warnings --wal-dir "${waldirs[1]}"
  local converged=0
  for i in $(seq 1 100); do
    # Each fresh client connection makes the coordinator redial the
    # fleet, so recovery is visible as soon as the shard listens.
    if ./build/tools/pcdb_client --port "$coord_port" \
        --sql "SELECT * FROM Warnings" >/dev/null 2>&1; then
      converged=1
      break
    fi
    sleep 0.1
  done
  if (( converged == 0 )); then
    echo "ERROR: fleet never converged after shard restart" >&2
    exit 1
  fi
  # Retry the failed write with the same identity: already-applied
  # shards dedup, the rest apply — exactly-once despite the crash.
  ./build/tools/pcdb_client --port "$coord_port" --writer-id 888 \
    --policy retract --ingest Warnings --row "Tue,7,lostw,retry" >/dev/null
  n="$(dist_answer "$coord_port" "SELECT * FROM Warnings WHERE week=7" \
    | grep -cw lostw)"
  if [[ "$n" != 1 ]]; then
    echo "ERROR: crash-spanning retry applied $n times (want exactly 1)" >&2
    exit 1
  fi
  ./build/tools/pcdb_client --port "$direct_port" --policy retract \
    --ingest Warnings --row "Tue,7,lostw,retry" | grep -q 'ingested=1'
  dist_differential "$coord_port" "$direct_port"
  echo "dist: fleet converged; differential holds after recovery"
  dist_cleanup
  for s in 0 1 2; do rm -rf "${waldirs[s]}"; done

  echo "=== dist: coordinator overhead + 3-shard scaling (BENCH_PR9.json) ==="
  rm -f BENCH_PR9.json
  local direct_bench_port coord1_port coord3_port
  # Leg 1: loadgen straight at one plain pcdbd.
  dist_start pcdbd --port 0
  direct_bench_port="$DIST_PORT"
  tools/bench_record.sh --out BENCH_PR9.json ./build/tools/pcdb_loadgen \
    --port "$direct_bench_port" --connections 8 \
    --requests "${DIST_LOADGEN_REQUESTS:-2000}"
  # Leg 2: the same pcdbd behind a 1-shard coordinator — the delta vs
  # leg 1 is the pure front-end overhead (a plain pcdbd reports shard 0
  # of 1, so the handshake accepts it).
  dist_start pcdb_coord --shards "127.0.0.1:$direct_bench_port"
  coord1_port="$DIST_PORT"
  tools/bench_record.sh --out BENCH_PR9.json ./build/tools/pcdb_loadgen \
    --endpoints "127.0.0.1:$coord1_port" --connections 8 \
    --requests "${DIST_LOADGEN_REQUESTS:-2000}"
  # Leg 3: a fresh 3-shard fleet (no WAL — the bench measures the read
  # path) behind a coordinator, targeted via --endpoints.
  local bench_shards=()
  for s in 0 1 2; do
    dist_start pcdbd --port 0 --shard-id "$s" --num-shards 3 \
      --hashed Warnings
    bench_shards[s]="$DIST_PORT"
  done
  dist_start pcdb_coord --shards \
    "127.0.0.1:${bench_shards[0]},127.0.0.1:${bench_shards[1]},127.0.0.1:${bench_shards[2]}" \
    --hashed Warnings
  coord3_port="$DIST_PORT"
  tools/bench_record.sh --out BENCH_PR9.json ./build/tools/pcdb_loadgen \
    --endpoints "127.0.0.1:$coord3_port" --connections 8 \
    --requests "${DIST_LOADGEN_REQUESTS:-2000}"
  dist_cleanup

  if ! python3 - <<'PY'
import json
legs = [json.loads(line) for line in open("BENCH_PR9.json")
        if line.strip()]
direct, coord1, coord3 = legs[:3]
def pct(base, new):
    return round((new - base) / base * 100.0, 2) if base > 0 else None
summary = {
    "bench": "pr9_dist_summary",
    "commit": direct["commit"],
    "date": direct["date"],
    "workload": {"requests": direct["n"], "connections": direct["threads"],
                 "legs": ["direct pcdbd", "pcdb_coord over 1 shard",
                          "pcdb_coord over 3 shards"]},
    "coordinator_overhead_p50_pct": pct(direct["median_ms"],
                                        coord1["median_ms"]),
    "coordinator_overhead_p95_pct": pct(direct["p95_ms"], coord1["p95_ms"]),
    "three_shard_qps_ratio_vs_one": round(coord3["qps"] / coord1["qps"], 3)
        if coord1["qps"] else None,
}
with open("BENCH_PR9.json", "a") as f:
    json.dump(summary, f)
    f.write("\n")
print(json.dumps(summary, indent=2))
# Gate: every leg completed without request or write errors; the
# latency/throughput numbers themselves are recorded, not gated
# (machine-dependent).
bad = any(l.get("errors", 0) or l.get("write_errors", 0) for l in legs)
raise SystemExit(1 if bad else 0)
PY
  then
    cat BENCH_PR9.json >&2
    echo "ERROR: a bench leg saw request errors" >&2
    exit 1
  fi
  echo "dist OK"
}

MODE="tier1"
RUN_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    analyze | lint) MODE="analyze" ;;
    fuzz) MODE="fuzz" ;;
    server) MODE="server" ;;
    faults) MODE="faults" ;;
    ingest) MODE="ingest" ;;
    crash) MODE="crash" ;;
    dist) MODE="dist" ;;
    obs) MODE="obs" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

case "$MODE" in
  tier1)
    run_tier1
    [[ "$RUN_ASAN" == 1 ]] && run_asan
    ;;
  analyze) run_analyze ;;
  fuzz) run_fuzz ;;
  server) run_server ;;
  faults) run_faults ;;
  ingest) run_ingest ;;
  crash) run_crash ;;
  dist) run_dist ;;
  obs) run_obs ;;
esac

echo "CI OK"
