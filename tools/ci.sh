#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# pass over the concurrency-sensitive tests (thread pool, parallel
# minimization/join/eval). Usage:
#   tools/ci.sh            # tier-1 + TSan parallel suite
#   tools/ci.sh --asan     # additionally run the full suite under ASan/UBSan
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: release build + full ctest ==="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --preset release -j "$JOBS"

echo "=== TSan: parallel test suite ==="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS" --target parallel_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_test

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "=== ASan/UBSan: full test suite ==="
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan -j "$JOBS"
fi

echo "CI OK"
