#!/usr/bin/env python3
"""Stitches per-process pcdb trace dumps into one Chrome trace.

Usage:  python3 tools/trace_merge.py FILE_OR_DIR [FILE_OR_DIR ...]
                --out merged.json [--trace-id N]

Each pcdb process (pcdb_coord, every pcdbd shard) dumps its own
pcdb_trace.<pid>.json at exit with timestamps measured on its private
steady clock. A dump's otherData records the wall-clock instant
(epoch_wall_us) at which that steady clock's zero was anchored, plus
the process's pid and label. Merging therefore:

  * re-bases every event onto one timeline: the earliest process's
    anchor becomes t=0 and every other dump shifts by its anchor delta;
  * corrects residual clock skew using the coordinator's dist.handshake
    spans: a shard span caused by a coordinator request cannot start
    before the request was sent, so when a cross-process child starts
    before its parent the child's whole process is shifted forward —
    but never by more than the largest handshake round trip, which
    bounds how wrong the two clocks can mutually appear;
  * tags every process with a Chrome metadata event (ph "M",
    process_name) carrying its label, so the viewer names the rows;
  * sums dropped_events across dumps.

Cross-process span parentage itself needs no fixup: trace_id /
span_id / parent_span_id ride the wire (protocol trace block), and id
generation is salted per process, so the ids are already globally
unique and consistent. --trace-id keeps only one trace's events.

Exit status 0 on success, 1 when no dumps were found or any dump was
unreadable.
"""

import argparse
import json
import pathlib
import sys


def load_dump(path):
    """Returns (events, other_data) or raises ValueError."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents missing or not a list")
    other = doc.get("otherData", {})
    if not isinstance(other, dict):
        raise ValueError("otherData is not an object")
    return events, other


def collect_files(paths):
    files = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("pcdb_trace*.json")))
        else:
            files.append(path)
    return files


def handshake_rtt_bound_us(events):
    """The largest dist.handshake round trip, our bound on how far two
    processes' re-based clocks may legitimately disagree."""
    bound = 0
    for ev in events:
        if ev.get("name") == "dist.handshake":
            rtt = ev.get("args", {}).get("rtt_micros", 0)
            bound = max(bound, int(rtt))
    return bound


def skew_corrections(events, rtt_bound_us):
    """Per-pid forward shifts (us) that restore parent-before-child on
    cross-process edges, each clamped to the handshake RTT bound."""
    span_owner = {}  # span_id -> (pid, start_ts)
    for ev in events:
        args = ev.get("args", {})
        if "span_id" in args:
            span_owner[args["span_id"]] = (ev["pid"], ev["ts"])
    shifts = {}
    for ev in events:
        args = ev.get("args", {})
        parent = args.get("parent_span_id", 0)
        if parent == 0 or parent not in span_owner:
            continue
        parent_pid, parent_ts = span_owner[parent]
        if parent_pid == ev["pid"]:
            continue
        deficit = parent_ts - ev["ts"]
        if deficit > 0:
            shifts[ev["pid"]] = min(max(shifts.get(ev["pid"], 0), deficit),
                                    rtt_bound_us)
    return shifts


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="per-process trace dumps or directories")
    parser.add_argument("--out", required=True, type=pathlib.Path,
                        help="merged Chrome trace to write")
    parser.add_argument("--trace-id", type=int, default=0,
                        help="keep only events of this trace id "
                             "(default: keep all)")
    args = parser.parse_args()

    files = collect_files(args.paths)
    if not files:
        print("trace_merge: no trace files found", file=sys.stderr)
        return 1

    merged = []
    metadata = []
    anchors = {}  # pid -> epoch_wall_us
    dropped = 0
    failed = False
    for path in files:
        try:
            events, other = load_dump(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"trace_merge: {path}: {exc}", file=sys.stderr)
            failed = True
            continue
        pid = other.get("pid")
        epoch = other.get("epoch_wall_us")
        if pid is None or epoch is None:
            print(f"trace_merge: {path}: otherData lacks pid/epoch_wall_us "
                  f"(pre-merge dump format?)", file=sys.stderr)
            failed = True
            continue
        anchors[pid] = epoch
        dropped += other.get("dropped_events", 0)
        label = other.get("process_label") or f"pid {pid}"
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": label}})
        for ev in events:
            if args.trace_id and \
                    ev.get("args", {}).get("trace_id") != args.trace_id:
                continue
            ev = dict(ev)
            ev["pid"] = pid
            merged.append(ev)
    if failed:
        return 1

    # Re-base every process onto the earliest anchor's timeline.
    base = min(anchors.values())
    for ev in merged:
        ev["ts"] += anchors[ev["pid"]] - base

    # Clamp residual skew so no shard span starts before the
    # coordinator request that caused it.
    rtt_bound = handshake_rtt_bound_us(merged)
    shifts = skew_corrections(merged, rtt_bound)
    for ev in merged:
        ev["ts"] += shifts.get(ev["pid"], 0)
    for pid, shift in sorted(shifts.items()):
        print(f"trace_merge: note: shifted pid {pid} by {shift}us "
              f"(skew clamp, handshake bound {rtt_bound}us)",
              file=sys.stderr)

    merged.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
    doc = {
        "traceEvents": metadata + merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_events": dropped,
            "merged_from": len(anchors),
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    print(f"trace_merge: OK ({len(anchors)} process(es), "
          f"{len(merged)} events -> {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
