#!/usr/bin/env python3
"""Deprecated shim: pcdb_lint.py grew into pcdb-analyze.

The seven original lint rules live on as checkers in the framework at
tools/analyze/ (see docs/STATIC_ANALYSIS.md), alongside the deeper
cross-cutting invariants (unchecked-status, lock-hierarchy,
protocol-consistency, failpoint-drift, obs-registry, blocking-in-loop).
This shim keeps old invocations and muscle memory working by exec'ing
the analyzer with the same arguments; switch scripts to

    python3 tools/analyze/pcdb_analyze.py

at your leisure.
"""

import os
import pathlib
import sys

ANALYZER = pathlib.Path(__file__).resolve().parent / "analyze" / \
    "pcdb_analyze.py"

if __name__ == "__main__":
    print("pcdb_lint.py is now pcdb-analyze; running "
          "tools/analyze/pcdb_analyze.py", file=sys.stderr)
    os.execv(sys.executable,
             [sys.executable, str(ANALYZER)] + sys.argv[1:])
