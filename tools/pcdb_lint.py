#!/usr/bin/env python3
"""Project-specific lint rules that clang-tidy cannot express.

Run from anywhere:  python3 tools/pcdb_lint.py  [--root REPO]

Rules
-----
 1. naked-mutex       std::mutex / std::condition_variable / lock_guard /
                      unique_lock / scoped_lock / shared_mutex may appear
                      only in src/common/thread_annotations.h.  Everything
                      else must use the annotated Mutex / MutexLock /
                      CondVar wrappers so Clang Thread Safety Analysis
                      sees every lock in the program.
 2. naked-thread      std::thread may appear only in the ThreadPool
                      implementation (src/common/thread_pool.{h,cc}).
                      Ad-hoc threads bypass the wait-group discipline and
                      the deterministic chunk-merge idiom.
 3. pattern-mutation  Pattern::SetCell (raw, index-trusting mutation) may
                      be called only inside src/pattern/, where indexes
                      are derived from the pattern's own arity.  All other
                      code builds patterns through constructors and the
                      arity-checked algebra operators.
 4. layering          Project includes must follow the layer DAG
                      common < relational < pattern < {sql, workloads}.
                      tests/, bench/, examples/, fuzz/, tools/ may include
                      any layer.
 5. no-abort          std::abort / exit / _Exit / quick_exit may appear
                      only in src/common/logging.h (PCDB_CHECK's last
                      resort) and fuzz/fuzz_util.h (libFuzzer crash
                      reporting).  Library code reports failures as
                      Status so injected faults, deadlines, and budget
                      trips can never terminate the process.
 6. raw-socket        Berkeley socket / poll syscalls (socket, bind,
                      listen, accept, connect, send, recv, setsockopt,
                      poll, shutdown, ...) may appear only in
                      src/server/net_*.  Everything else — including the
                      server loop, clients, tools, and tests — goes
                      through the Socket/Listener wrappers so EINTR
                      handling, timeouts, and the server.* failpoints
                      live in exactly one place.
 7. naked-output      std::cerr / std::cout / std::clog and the printf
                      family may appear in src/ only inside the
                      structured logger (src/common/log.{h,cc}) and
                      PCDB_CHECK's last-resort reporting
                      (src/common/logging.h).  Library code emits
                      diagnostics through common/log.h (LogInfo/LogWarn/
                      LogError), which produces machine-parseable JSON
                      lines and honours PCDB_LOG_LEVEL.  tools/, tests/,
                      bench/, examples/ and fuzz/ are exempt: stdout is
                      their user interface.

Exit status is 0 when clean, 1 when any rule fires.
"""

import argparse
import pathlib
import re
import sys

SRC_SUBDIRS = ("src",)
EXTRA_SUBDIRS = ("tests", "bench", "examples", "fuzz", "tools")
CXX_SUFFIXES = {".h", ".cc", ".cpp"}

# Layer -> layers it may include (itself always allowed).
LAYER_DEPS = {
    "common": set(),
    "obs": {"common"},
    "relational": {"common", "obs"},
    "pattern": {"common", "obs", "relational"},
    "sql": {"common", "obs", "relational", "pattern"},
    "workloads": {"common", "obs", "relational", "pattern"},
    "server": {"common", "obs", "relational", "pattern", "sql"},
}

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
NAKED_THREAD_RE = re.compile(r"std::thread\b")
SETCELL_CALL_RE = re.compile(r"[.>]\s*SetCell\s*\(")
INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')

ABORT_RE = re.compile(r"\b(?:std::)?(?:abort|exit|_Exit|quick_exit)\s*\(")

# Raw Berkeley socket / poll syscalls.  The leading lookbehinds reject
# member calls (.send(, ->recv(), identifiers (my_bind(), and std::bind,
# while still matching globally-qualified ::socket( forms.
RAW_SOCKET_RE = re.compile(
    r"(?<![A-Za-z0-9_.>])(?<!std::)"
    r"(?:socket|bind|listen|accept4?|connect|send|sendto|recv|recvfrom|"
    r"setsockopt|getsockopt|getsockname|getpeername|"
    r"poll|epoll_create1|epoll_ctl|epoll_wait|shutdown)\s*\(")

# Naked diagnostic output in library code.  The lookbehind rejects the
# bounded-buffer formatters (snprintf, vsnprintf) and member calls; the
# stream patterns catch cerr/cout/clog however qualified.
NAKED_OUTPUT_RE = re.compile(
    r"std::(cerr|cout|clog)\b"
    r"|(?<![A-Za-z0-9_.>:])(?:printf|fprintf|vprintf|vfprintf|puts|fputs)"
    r"\s*\(")

MUTEX_ALLOWED = {"src/common/thread_annotations.h"}
THREAD_ALLOWED = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}
ABORT_ALLOWED = {"src/common/logging.h", "fuzz/fuzz_util.h"}
OUTPUT_ALLOWED = {"src/common/log.h", "src/common/log.cc",
                  "src/common/logging.h"}


def strip_comments(lines):
    """Yields (lineno, code) with // and /* */ comment text blanked out.

    String literals are not parsed; good enough for lint-grade matching
    (none of the patterns plausibly appears inside a string here).
    """
    in_block = False
    for lineno, line in enumerate(lines, start=1):
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                out.append(line[i])
                i += 1
        yield lineno, "".join(out)


def layer_of(rel):
    """'src/pattern/minimize.cc' -> 'pattern', None outside src/."""
    parts = pathlib.PurePosixPath(rel).parts
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_DEPS:
        return parts[1]
    return None


def lint_file(rel, text, problems):
    layer = layer_of(rel)
    in_pattern_layer = rel.startswith("src/pattern/")
    for lineno, code in strip_comments(text.splitlines()):
        if rel not in MUTEX_ALLOWED and rel not in THREAD_ALLOWED:
            m = NAKED_MUTEX_RE.search(code)
            if m:
                problems.append(
                    (rel, lineno, "naked-mutex",
                     f"use pcdb::Mutex/MutexLock/CondVar from "
                     f"common/thread_annotations.h instead of {m.group(0)}"))
        if rel not in THREAD_ALLOWED and NAKED_THREAD_RE.search(code):
            problems.append(
                (rel, lineno, "naked-thread",
                 "spawn work through pcdb::ThreadPool, not std::thread"))
        if rel not in ABORT_ALLOWED and ABORT_RE.search(code):
            problems.append(
                (rel, lineno, "no-abort",
                 "return a Status instead of terminating; only "
                 "common/logging.h (PCDB_CHECK) and fuzz/fuzz_util.h may "
                 "abort the process"))
        if (not rel.startswith("src/server/net_")
                and RAW_SOCKET_RE.search(code)):
            problems.append(
                (rel, lineno, "raw-socket",
                 "raw socket/poll syscalls are confined to "
                 "src/server/net_*; use the Socket/Listener wrappers"))
        if (rel.startswith("src/") and rel not in OUTPUT_ALLOWED
                and NAKED_OUTPUT_RE.search(code)):
            problems.append(
                (rel, lineno, "naked-output",
                 "emit diagnostics through common/log.h (LogInfo/LogWarn/"
                 "LogError), not std::cerr/std::cout/printf"))
        if not in_pattern_layer and SETCELL_CALL_RE.search(code):
            problems.append(
                (rel, lineno, "pattern-mutation",
                 "Pattern::SetCell is reserved for src/pattern/ internals; "
                 "build patterns via constructors or the algebra API"))
        if layer is not None:
            m = INCLUDE_RE.match(code)
            if m:
                inc = m.group(1)
                inc_layer = inc.split("/", 1)[0]
                if (inc_layer in LAYER_DEPS and inc_layer != layer
                        and inc_layer not in LAYER_DEPS[layer]):
                    problems.append(
                        (rel, lineno, "layering",
                         f"src/{layer}/ must not include \"{inc}\" "
                         f"(allowed: {sorted(LAYER_DEPS[layer] | {layer})})"))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: parent of this script's directory)")
    args = parser.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    problems = []
    checked = 0
    for subdir in SRC_SUBDIRS + EXTRA_SUBDIRS:
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            lint_file(rel, path.read_text(encoding="utf-8"), problems)
            checked += 1

    for rel, lineno, rule, msg in problems:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if problems:
        print(f"pcdb_lint: {len(problems)} problem(s) in {checked} files")
        return 1
    print(f"pcdb_lint: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
