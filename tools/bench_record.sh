#!/usr/bin/env bash
# Appends one bench run to a JSON-lines trajectory file, tagging each
# result line with the current commit and date so regressions can be
# traced across PRs:
#
#   tools/bench_record.sh [--out BENCH_PR2.json] <bench-binary> [args...]
#
# Bench binaries print one {"bench":...} JSON object per result (see
# bench/bench_util.h JsonResultLine); everything else they print is
# human-readable narration and is passed through to stderr.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_PR2.json"
if [[ "${1:-}" == "--out" ]]; then
  OUT="$2"
  shift 2
fi
if [[ $# -lt 1 ]]; then
  echo "usage: tools/bench_record.sh [--out FILE] <bench-binary> [args...]" >&2
  exit 2
fi

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

"$@" | while IFS= read -r line; do
  if [[ "$line" == '{"bench"'* ]]; then
    printf '{"commit":"%s","date":"%s",%s\n' \
      "$COMMIT" "$DATE" "${line#\{}" >> "$OUT"
  else
    printf '%s\n' "$line" >&2
  fi
done
echo "recorded to $OUT" >&2
