// pcdb_wal_dump — offline inspector for pcdbd's durable write path.
//
//   pcdb_wal_dump --dir WAL_DIR          # checkpoint summary + all segments
//   pcdb_wal_dump SEGMENT_FILE...        # specific segment files
//
// Prints one line per WAL record (lsn, type, tenant, writer/seq, payload
// size) and classifies the tail of each segment: "clean" when the last
// record ends exactly at EOF, "torn" for a crash mid-append (expected,
// recovery truncates it), "corrupt" for a CRC/structure failure (bit
// rot or a short write that landed mid-stream). With --dir, the
// CHECKPOINT file (if any) is summarized first — its LSN tells you
// which records the server would actually replay.
//
// The tool never mutates anything; it is safe to point at a live
// server's WAL directory.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace {

const char* TypeName(pcdb::WalRecordType type) {
  switch (type) {
    case pcdb::WalRecordType::kIngest:
      return "INGEST";
    case pcdb::WalRecordType::kPunctuate:
      return "PUNCTUATE";
  }
  return "?";
}

// Reads the whole file; empty + false on failure.
bool ReadAll(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// Returns 0 on a clean segment, 1 on torn/corrupt/unreadable.
int DumpSegment(const std::string& path) {
  std::string bytes;
  if (!ReadAll(path, &bytes)) {
    std::fprintf(stderr, "pcdb_wal_dump: cannot read %s\n", path.c_str());
    return 1;
  }
  std::printf("segment %s (%zu bytes)\n", path.c_str(), bytes.size());
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t offset = 0;
  uint64_t records = 0;
  while (offset < bytes.size()) {
    pcdb::WalDecodeResult decoded =
        pcdb::DecodeWalRecord(data + offset, bytes.size() - offset);
    if (decoded.outcome == pcdb::WalDecodeOutcome::kTorn) {
      std::printf("  @%zu torn tail (%zu trailing bytes): %s\n", offset,
                  bytes.size() - offset, decoded.detail.c_str());
      return 1;
    }
    if (decoded.outcome == pcdb::WalDecodeOutcome::kCorrupt) {
      std::printf("  @%zu CORRUPT: %s\n", offset, decoded.detail.c_str());
      return 1;
    }
    const pcdb::WalRecord& r = decoded.record;
    std::printf(
        "  @%zu lsn=%llu %s tenant='%s' writer=%llu seq=%llu payload=%zu\n",
        offset, static_cast<unsigned long long>(r.lsn), TypeName(r.type),
        r.tenant.c_str(), static_cast<unsigned long long>(r.writer_id),
        static_cast<unsigned long long>(r.seq), r.payload.size());
    offset += decoded.consumed;
    ++records;
  }
  std::printf("  clean: %llu records\n",
              static_cast<unsigned long long>(records));
  return 0;
}

void DumpCheckpoint(const std::string& dir) {
  const std::string path = dir + "/CHECKPOINT";
  auto loaded = pcdb::LoadCheckpoint(path);
  if (!loaded.ok()) {
    std::printf("checkpoint %s: UNREADABLE: %s\n", path.c_str(),
                loaded.status().ToString().c_str());
    return;
  }
  if (!loaded->has_value()) {
    std::printf("checkpoint %s: absent (full-log replay)\n", path.c_str());
    return;
  }
  const pcdb::CheckpointState& state = **loaded;
  size_t tracked_writers = 0;
  for (const auto& [tenant, writers] : state.writers) {
    tracked_writers += writers.size();
  }
  std::printf(
      "checkpoint %s: last_lsn=%llu tables=%zu tracked_writers=%zu\n",
      path.c_str(), static_cast<unsigned long long>(state.last_lsn),
      state.db.database().TableNames().size(), tracked_writers);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdb_wal_dump --dir WAL_DIR\n"
          "   or: pcdb_wal_dump SEGMENT_FILE...\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (dir.empty() && files.empty()) {
    std::fprintf(stderr,
                 "pcdb_wal_dump: need --dir or segment files (see --help)\n");
    return 2;
  }
  if (!dir.empty()) {
    DumpCheckpoint(dir);
    auto segments = pcdb::ListWalSegments(dir);
    if (!segments.ok()) {
      std::fprintf(stderr, "pcdb_wal_dump: %s\n",
                   segments.status().ToString().c_str());
      return 1;
    }
    // ListWalSegments returns full paths, sorted by first LSN.
    files.insert(files.end(), segments->begin(), segments->end());
    if (files.empty()) std::printf("no WAL segments in %s\n", dir.c_str());
  }
  int rc = 0;
  for (const std::string& path : files) {
    if (DumpSegment(path) != 0) rc = 1;
  }
  return rc;
}
