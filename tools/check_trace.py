#!/usr/bin/env python3
"""Validates pcdb Chrome trace-event JSON dumps (obs/trace.h).

Usage:  python3 tools/check_trace.py FILE_OR_DIR [FILE_OR_DIR ...]
                [--min-events N] [--stitched]

For a directory, every pcdb_trace*.json inside (recursively) is checked.
A file passes when:

  * it parses as JSON with a "traceEvents" list and
    displayTimeUnit == "ms";
  * every event is a complete ("ph": "X") event carrying name, cat, ph,
    ts, dur, pid, tid with non-negative timing;
  * every span name resolves to a kSpan* constant in the observability
    registry (src/obs/names.h) — an unknown name means someone bypassed
    the registry with a string literal, which the obs-registry checker
    in pcdb-analyze bans at the source level;
  * span args that carry ids (trace_id, span_id) are positive;
  * on each (pid, tid) the spans nest: sorted by start time, no span
    partially overlaps an enclosing one. RAII spans strictly nest per
    thread; explicitly-timed intervals (Tracer::RecordInterval, today
    only server.queue_wait) measure wall time spent on *another*
    thread's timeline — a query's wait in the admission queue overlaps
    whatever its eval thread was running meanwhile — so they are
    exempt from the nesting check (their timing fields are still
    validated).

Chrome metadata events ("ph": "M", e.g. the process_name rows
tools/trace_merge.py adds) are tolerated and skipped.

--stitched additionally validates a merged multi-process dump
(tools/trace_merge.py output): the events must span more than one pid,
at least one parent edge must cross a process boundary (proof that the
trace context actually rode the wire), and every shard-side eval.*
span must reach the coordinator's dist.scatter span by walking
parent_span_id links — the distributed-tracing contract from
docs/OBSERVABILITY.md.

Exit status is 0 when every file passes and at least one file (and
--min-events events in total) was seen, 1 otherwise.
"""

import argparse
import collections
import json
import pathlib
import re
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

NAMES_HEADER = (pathlib.Path(__file__).resolve().parent.parent
                / "src" / "obs" / "names.h")

# Matches the registry declarations in names.h, including ones whose
# string value wraps to the next line.
SPAN_CONST_RE = re.compile(
    r"inline\s+constexpr\s+char\s+kSpan\w+\[\]\s*=\s*\n?\s*\"([^\"]*)\"")


def load_span_registry(header=NAMES_HEADER):
    """Span names declared in the observability registry, or None when
    the header is unavailable (running against a bare trace dump)."""
    try:
        text = header.read_text(encoding="utf-8")
    except OSError:
        return None
    return frozenset(m.group(1) for m in SPAN_CONST_RE.finditer(text))

# Non-RAII intervals recorded after the fact (Tracer::RecordInterval):
# their [start, end) lies on the recording thread's track but measures
# time the work spent elsewhere (e.g. queued), so it legitimately
# overlaps that thread's other spans.
ASYNC_INTERVAL_NAMES = frozenset({"server.queue_wait"})


def check_file(path, registry=None, collect=None):
    """Returns (errors, num_events) for one trace file. Valid complete
    events are appended to `collect` (for cross-file stitched checks)."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"], 0

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"], 0
    if doc.get("displayTimeUnit") != "ms":
        errors.append("displayTimeUnit != 'ms'")

    per_thread = collections.defaultdict(list)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        if ev.get("ph") == "M":
            # Viewer metadata (process_name rows from trace_merge.py):
            # no timing to validate, just sane addressing.
            if "pid" not in ev or not ev.get("name"):
                errors.append(f"event {i}: metadata event without "
                              f"pid/name")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in ev]
        if missing:
            errors.append(f"event {i}: missing keys {missing}")
            continue
        if ev["ph"] != "X":
            errors.append(f"event {i}: ph {ev['ph']!r}, expected 'X'")
            continue
        if not ev["name"]:
            errors.append(f"event {i}: empty name")
        elif registry is not None and ev["name"] not in registry:
            errors.append(
                f"event {i}: span name '{ev['name']}' is not declared "
                f"in src/obs/names.h — add a kSpan* constant to the "
                f"registry instead of tracing with a string literal")
        if ev["ts"] < 0 or ev["dur"] < 0:
            errors.append(f"event {i} ({ev['name']}): negative timing")
            continue
        args = ev.get("args", {})
        for key in ("trace_id", "span_id"):
            if key in args and args[key] <= 0:
                errors.append(f"event {i} ({ev['name']}): {key} <= 0")
        if collect is not None:
            collect.append(ev)
        if ev["name"] not in ASYNC_INTERVAL_NAMES:
            per_thread[(ev["pid"], ev["tid"])].append(ev)

    for (pid, tid), evs in per_thread.items():
        # Parent-first on ties: the enclosing span shares its child's
        # start when the child opened immediately, but lasts longer.
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        open_ends = []  # ends of enclosing spans, innermost last
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while open_ends and open_ends[-1] <= start:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                errors.append(
                    f"tid {pid}/{tid}: span '{ev['name']}' "
                    f"[{start}, {end}) partially overlaps an enclosing "
                    f"span ending at {open_ends[-1]}")
            open_ends.append(end)

    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if dropped:
        # Dropping is legal (bounded buffers) but worth surfacing.
        print(f"{path}: note: {dropped} events dropped to the "
              f"per-thread cap", file=sys.stderr)
    return errors, len(events)


def check_stitched(events):
    """Validates the cross-process shape of a merged dump: multiple
    pids, at least one wire-crossing parent edge, and every shard-side
    eval.* span a descendant of the coordinator's dist.scatter."""
    errors = []
    pids = {ev["pid"] for ev in events}
    if len(pids) < 2:
        errors.append(f"stitched: events span only {len(pids)} pid(s); "
                      f"a merged fleet dump needs coordinator + shards")
        return errors

    by_span = {}
    for ev in events:
        span_id = ev.get("args", {}).get("span_id")
        if span_id:
            by_span[span_id] = ev

    cross_edges = 0
    for ev in events:
        parent = ev.get("args", {}).get("parent_span_id", 0)
        parent_ev = by_span.get(parent)
        if parent_ev is not None and parent_ev["pid"] != ev["pid"]:
            cross_edges += 1
    if cross_edges == 0:
        errors.append(
            "stitched: no parent edge crosses a process boundary — the "
            "trace context did not ride the wire (protocol trace block)")

    coordinator_pids = {ev["pid"] for ev in events
                        if ev["name"] == "dist.scatter"}
    if not coordinator_pids:
        errors.append("stitched: no dist.scatter span; was the query "
                      "actually a broadcast through the coordinator?")
        return errors

    for ev in events:
        if not ev["name"].startswith("eval.") or \
                ev["pid"] in coordinator_pids:
            continue
        node, seen = ev, set()
        while node is not None and node["name"] != "dist.scatter":
            parent = node.get("args", {}).get("parent_span_id", 0)
            if parent in seen:
                node = None
                break
            seen.add(parent)
            node = by_span.get(parent)
        if node is None:
            errors.append(
                f"stitched: shard span '{ev['name']}' (pid {ev['pid']}, "
                f"span {ev.get('args', {}).get('span_id')}) has no "
                f"dist.scatter ancestor — shard work is not parented "
                f"under the coordinator's fan-out")
    return errors


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="trace files or directories to scan")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail unless at least N events total "
                             "(default 1)")
    parser.add_argument("--stitched", action="store_true",
                        help="also validate merged multi-process "
                             "structure (trace_merge.py output): "
                             "cross-pid parent edges, shard eval.* "
                             "under dist.scatter")
    parser.add_argument("--names-header", type=pathlib.Path,
                        default=NAMES_HEADER,
                        help="observability registry header to validate "
                             "span names against (default: "
                             "src/obs/names.h next to this script)")
    args = parser.parse_args()

    registry = load_span_registry(args.names_header)
    if registry is None:
        print(f"check_trace: note: {args.names_header} not found; "
              f"span-name registry validation skipped", file=sys.stderr)

    files = []
    for raw in args.paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("pcdb_trace*.json")))
        else:
            files.append(path)
    if not files:
        print("check_trace: no trace files found", file=sys.stderr)
        return 1

    failed = False
    total_events = 0
    stitched_events = [] if args.stitched else None
    for path in files:
        errors, count = check_file(path, registry, stitched_events)
        total_events += count
        for err in errors:
            print(f"{path}: {err}")
        if errors:
            failed = True
    if args.stitched:
        for err in check_stitched(stitched_events):
            print(err)
            failed = True
    if total_events < args.min_events:
        print(f"check_trace: only {total_events} events across "
              f"{len(files)} file(s), expected >= {args.min_events}")
        failed = True
    if failed:
        return 1
    print(f"check_trace: OK ({len(files)} file(s), "
          f"{total_events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
