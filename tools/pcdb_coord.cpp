// pcdb_coord — the distributed pcdb front end (docs/DISTRIBUTED.md).
//
// Speaks the unchanged pcdbd client protocol on one port and
// scatter-gathers queries/writes against a fleet of shard pcdbd
// processes, merging rows and re-minimizing the union of per-shard
// completeness patterns. Clients connect to it exactly as they would to
// a single pcdbd.
//
//   pcdb_coord --shards HOST:PORT,HOST:PORT,... [--port N] [--host H]
//              [--hashed T1,T2,...] [--worker-threads N]
//              [--shard-timeout-ms N] [--max-writer-states N]
//              [--metrics-dump]
//
// --shards lists the fleet in shard-id order; each shard must have been
// started with matching --shard-id I --num-shards N --hashed ... flags
// (the coordinator verifies the wiring over SHARD_INFO on first use and
// refuses a mismatched shard). With --port 0 (the default) an ephemeral
// port is bound; the single line "pcdb_coord listening on HOST:PORT" on
// stdout announces it (tools/ci.sh parses that line).
//
// SIGINT/SIGTERM stop the front end: the accept loop exits, in-flight
// requests finish, and the process exits 0. The shards are independent
// processes and keep running.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/log.h"
#include "dist/coordinator.h"
#include "obs/trace.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

// --flag=V or --flag V; returns true and advances *i on a match.
bool ParseUint(int argc, char** argv, int* i, const char* flag,
               uint64_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = std::strtoull(arg + flag_len + 1, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = std::strtoull(argv[*i + 1], nullptr, 10);
    ++*i;
    return true;
  }
  return false;
}

bool ParseString(int argc, char** argv, int* i, const char* flag,
                 std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  pcdb::CoordinatorOptions options;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    uint64_t n = 0;
    std::string s;
    if (ParseString(argc, argv, &i, "--host", &s)) {
      options.host = s;
    } else if (ParseUint(argc, argv, &i, "--port", &n)) {
      options.port = static_cast<uint16_t>(n);
    } else if (ParseString(argc, argv, &i, "--shards", &s)) {
      pcdb::Result<std::vector<pcdb::ShardEndpoint>> shards =
          pcdb::ParseEndpoints(s);
      if (!shards.ok()) {
        pcdb::LogError("bad --shards spec")
            .Str("error", shards.status().ToString());
        return 2;
      }
      options.shards = *std::move(shards);
    } else if (ParseString(argc, argv, &i, "--hashed", &s)) {
      pcdb::Result<std::set<std::string>> hashed = pcdb::ParseHashedSpec(s);
      if (!hashed.ok()) {
        pcdb::LogError("bad --hashed spec")
            .Str("error", hashed.status().ToString());
        return 2;
      }
      options.hashed_tables = *std::move(hashed);
    } else if (ParseUint(argc, argv, &i, "--worker-threads", &n)) {
      options.worker_threads = n;
    } else if (ParseUint(argc, argv, &i, "--shard-timeout-ms", &n)) {
      options.shard_recv_timeout_millis = static_cast<int>(n);
    } else if (ParseUint(argc, argv, &i, "--max-writer-states", &n)) {
      options.max_writer_states = n;
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdb_coord --shards HOST:PORT,HOST:PORT,...\n"
          "                  [--port N] [--host H] [--hashed T1,T2,...]\n"
          "                  [--worker-threads N] [--shard-timeout-ms N]\n"
          "                  [--max-writer-states N] [--metrics-dump]\n");
      return 0;
    } else {
      pcdb::LogError("unknown flag (see --help)").Str("flag", argv[i]);
      return 2;
    }
  }

  if (options.shards.empty()) {
    pcdb::LogError("--shards is required (see --help)");
    return 2;
  }

  const std::string host = options.host;
  // Label the coordinator's trace dump for tools/trace_merge.py.
  pcdb::Tracer::Global().SetProcessLabel("pcdb_coord");
  pcdb::Coordinator coord(std::move(options));
  pcdb::Status started = coord.Start();
  if (!started.ok()) {
    pcdb::LogError("startup failed").Str("error", started.ToString());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Machine-parsed announcement, same shape as pcdbd's (ci.sh greps it).
  std::printf("pcdb_coord listening on %s:%u\n", host.c_str(),
              static_cast<unsigned>(coord.port()));
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  pcdb::LogInfo("shutting down");
  coord.Stop();
  if (metrics_dump) {
    std::printf("%s\n", coord.metrics().ToJson().c_str());
  }
  return 0;
}
