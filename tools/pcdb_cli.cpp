// pcdb interactive shell: load or build a partially complete database,
// run SQL with completeness annotation, inspect diagnoses, punctuate
// feeds, and persist the result.
//
// Usage: pcdb_cli [--db <dir>] [--timeout-ms <n>] [--max-patterns <n>]
//                 [--explain-analyze]
//
//   --timeout-ms <n>    per-query deadline; an overrunning query stops
//                       cooperatively with a Timeout error
//   --max-patterns <n>  pattern budget; when the completeness reasoning
//                       would exceed it, the answer degrades to a sound
//                       coarser pattern summary (marked "degraded")
//   --explain-analyze   print a per-operator profile (rows, patterns,
//                       minimization probes, per-operator timings) after
//                       every query's answer
//
// Commands (\h inside the shell for help):
//   SELECT ...;                  run a query, print annotated answer
//   \tables                      list tables with row/pattern counts
//   \patterns <table>            show a table's completeness patterns
//   \assert <table> f1|f2|...    assert a completeness pattern (* = wildcard)
//   \insert <table> f1|f2|...    insert a row
//   \diagnose SELECT ...;        run incompleteness diagnosis
//   \aware on|off                toggle the instance-aware algebra (§5)
//   \zombies on|off              toggle zombie patterns (Appendix E)
//   \save <dir>  /  \load <dir>  persist / restore the database
//   \q                           quit

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/profile.h"
#include "pattern/annotated_eval.h"
#include "pattern/diagnosis.h"
#include "pattern/gaps.h"
#include "pattern/storage.h"
#include "pattern/summary.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace {

using namespace pcdb;

class Shell {
 public:
  Shell() : adb_(MakeMaintenanceDatabase()) {}

  int Run(std::istream& in, bool interactive) {
    std::string line;
    std::string pending;
    if (interactive) Prompt();
    while (std::getline(in, line)) {
      line = TrimString(line);
      if (line.empty()) {
        if (interactive) Prompt();
        continue;
      }
      if (line[0] == '\\') {
        if (!HandleCommand(line)) return 0;
      } else {
        pending += (pending.empty() ? "" : " ") + line;
        if (pending.back() == ';') {
          RunSql(pending);
          pending.clear();
        }
      }
      if (interactive) Prompt();
    }
    if (!pending.empty()) RunSql(pending);
    return 0;
  }

  Status LoadFrom(const std::string& dir) {
    auto loaded = LoadAnnotatedDatabase(dir);
    PCDB_RETURN_NOT_OK(loaded.status());
    adb_ = std::move(loaded).ValueOrDie();
    return Status::OK();
  }

  void SetTimeoutMillis(double millis) { timeout_ms_ = millis; }
  void SetMaxPatterns(size_t max_patterns) { max_patterns_ = max_patterns; }
  void SetExplainAnalyze(bool on) { explain_analyze_ = on; }

 private:
  void Prompt() { std::cout << "pcdb> " << std::flush; }

  void RunSql(const std::string& sql) {
    auto plan = PlanSql(sql, adb_.database());
    if (!plan.ok()) {
      std::cout << "error: " << plan.status() << "\n";
      return;
    }
    AnnotatedEvalOptions options;
    options.instance_aware = instance_aware_;
    options.zombies = zombies_;
    // A fresh context per query: the deadline clock starts now.
    ExecContext ctx;
    if (timeout_ms_ > 0) ctx.WithDeadlineAfterMillis(timeout_ms_);
    if (max_patterns_ > 0) ctx.WithPatternBudget(max_patterns_);
    options.collect_profile = explain_analyze_;
    AnnotatedEvalInfo info;
    WallTimer timer;
    auto result = EvaluateAnnotated(*plan, adb_, options, ctx, &info);
    const double total_millis = timer.ElapsedMillis();
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      return;
    }
    std::cout << result->ToString() << Summarize(*result).ToString() << "\n"
              << "(query " << info.data_millis << " ms, completeness "
              << info.pattern_millis << " ms)\n";
    if (explain_analyze_) {
      QueryProfile profile = std::move(info.profile);
      profile.degraded = result->degraded;
      profile.eval_micros = total_millis * 1000.0;
      std::cout << QueryProfileToText(profile);
    }
    if (result->degraded) {
      std::cout << "note: pattern budget (" << max_patterns_
                << ") tripped; the patterns above are a sound but "
                   "incomplete summary\n";
    }
  }

  /// Returns false when the shell should exit.
  bool HandleCommand(const std::string& line) {
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command == "\\q" || command == "\\quit") return false;
    if (command == "\\h" || command == "\\help") {
      std::cout
          << "SELECT ...;        annotated query\n"
          << "\\tables            list tables\n"
          << "\\patterns <t>      show completeness patterns\n"
          << "\\gaps <t>          show maximal uncovered slices\n"
          << "\\assert <t> a|b|*  assert a pattern\n"
          << "\\insert <t> a|b|c  insert a row\n"
          << "\\diagnose SQL;     incompleteness diagnosis\n"
          << "\\aware on|off      instance-aware algebra (currently "
          << (instance_aware_ ? "on" : "off") << ")\n"
          << "\\zombies on|off    zombie patterns (currently "
          << (zombies_ ? "on" : "off") << ")\n"
          << "\\save <dir>        persist database\n"
          << "\\load <dir>        load database\n"
          << "\\q                 quit\n";
      return true;
    }
    if (command == "\\tables") {
      for (const std::string& name : adb_.database().TableNames()) {
        const Table* table = *adb_.database().GetTable(name);
        std::cout << name << " " << table->schema().ToString() << ": "
                  << table->num_rows() << " rows, "
                  << adb_.patterns(name).size() << " patterns\n";
      }
      return true;
    }
    if (command == "\\patterns") {
      std::string table;
      stream >> table;
      if (!adb_.database().HasTable(table)) {
        std::cout << "error: no table '" << table << "'\n";
        return true;
      }
      std::cout << adb_.patterns(table).ToString();
      return true;
    }
    if (command == "\\gaps") {
      std::string table;
      stream >> table;
      auto gaps = TableCoverageGaps(adb_, table);
      if (!gaps.ok()) {
        std::cout << "error: " << gaps.status() << "\n";
      } else if (gaps->empty()) {
        std::cout << "no gaps: every slice is covered by a pattern\n";
      } else {
        std::cout << "maximal uncovered slices:\n" << gaps->ToString();
      }
      return true;
    }
    if (command == "\\assert" || command == "\\insert") {
      std::string table;
      std::string fields_text;
      stream >> table;
      std::getline(stream, fields_text);
      std::vector<std::string> fields;
      for (std::string& f : SplitString(TrimString(fields_text), '|')) {
        fields.push_back(TrimString(f));
      }
      Status status;
      if (command == "\\assert") {
        status = adb_.AddPattern(table, fields);
      } else {
        auto stored = adb_.database().GetTable(table);
        if (!stored.ok()) {
          std::cout << "error: " << stored.status() << "\n";
          return true;
        }
        Tuple row;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (i >= (*stored)->schema().arity()) break;
          auto value =
              Value::Parse(fields[i], (*stored)->schema().column(i).type);
          if (!value.ok()) {
            status = value.status();
            break;
          }
          row.push_back(std::move(value).ValueOrDie());
        }
        if (status.ok()) status = adb_.AddRow(table, std::move(row));
      }
      std::cout << (status.ok() ? "ok" : "error: " + status.ToString())
                << "\n";
      return true;
    }
    if (command == "\\diagnose") {
      std::string sql;
      std::getline(stream, sql);
      auto plan = PlanSql(TrimString(sql), adb_.database());
      if (!plan.ok()) {
        std::cout << "error: " << plan.status() << "\n";
        return true;
      }
      auto report = DiagnoseIncompleteness(*plan, adb_);
      std::cout << (report.ok() ? report->ToString()
                                : "error: " + report.status().ToString() +
                                      "\n");
      return true;
    }
    if (command == "\\aware" || command == "\\zombies") {
      std::string setting;
      stream >> setting;
      bool value = setting == "on";
      if (command == "\\aware") {
        instance_aware_ = value;
      } else {
        zombies_ = value;
      }
      std::cout << "ok\n";
      return true;
    }
    if (command == "\\save" || command == "\\load") {
      std::string dir;
      stream >> dir;
      Status status = command == "\\save" ? SaveAnnotatedDatabase(adb_, dir)
                                          : LoadFrom(dir);
      std::cout << (status.ok() ? "ok" : "error: " + status.ToString())
                << "\n";
      return true;
    }
    std::cout << "unknown command '" << command << "' (\\h for help)\n";
    return true;
  }

  AnnotatedDatabase adb_;
  bool instance_aware_ = false;
  bool zombies_ = false;
  bool explain_analyze_ = false;
  double timeout_ms_ = 0;     // 0 = no deadline
  size_t max_patterns_ = 0;   // 0 = no pattern budget
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      Status status = shell.LoadFrom(argv[++i]);
      if (!status.ok()) {
        std::cerr << "cannot load database: " << status << "\n";
        return 1;
      }
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      char* end = nullptr;
      double millis = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || millis < 0) {
        std::cerr << "--timeout-ms needs a non-negative number\n";
        return 1;
      }
      shell.SetTimeoutMillis(millis);
    } else if (arg == "--max-patterns" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "--max-patterns needs a non-negative integer\n";
        return 1;
      }
      shell.SetMaxPatterns(static_cast<size_t>(n));
    } else if (arg == "--explain-analyze") {
      shell.SetExplainAnalyze(true);
    } else {
      std::cerr << "usage: pcdb_cli [--db <dir>] [--timeout-ms <n>] "
                   "[--max-patterns <n>] [--explain-analyze]\n";
      return 1;
    }
  }
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::cout << "pcdb shell — partially complete databases "
                 "(\\h for help). Preloaded: the paper's maintenance "
                 "example.\n";
  }
  return shell.Run(std::cin, interactive);
}
