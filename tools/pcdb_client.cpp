// pcdb_client — one-shot command-line client for pcdbd.
//
//   pcdb_client --port N [--host H] --ping
//   pcdb_client --port N [--host H] --stats
//   pcdb_client --port N [--host H] --sql "SELECT ..." [--deadline-ms N]
//               [--max-rows N] [--max-patterns N] [--max-memory N]
//               [--aware] [--zombies] [--profile] [--timeout-ms N]
//
// --profile requests the server's per-query EXPLAIN ANALYZE profile
// (the ANSWER_PROFILE frame) and prints the JSON after the trailer.
//
// Queries print the annotated answer (rows + minimized pattern set) in
// the same format as the in-process CLI, plus the server-side trailer
// (cache hit, degraded flag, timings). Remote errors are printed with
// the exact status code and message the in-process evaluation would
// produce, and exit with code 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

namespace {

bool ParseUint(int argc, char** argv, int* i, const char* flag,
               uint64_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = std::strtoull(arg + flag_len + 1, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = std::strtoull(argv[*i + 1], nullptr, 10);
    ++*i;
    return true;
  }
  return false;
}

bool ParseString(int argc, char** argv, int* i, const char* flag,
                 std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  bool ping = false;
  bool stats = false;
  std::string sql;
  pcdb::ClientOptions conn_options;
  pcdb::ClientQueryOptions query_options;
  for (int i = 1; i < argc; ++i) {
    uint64_t n = 0;
    if (ParseString(argc, argv, &i, "--host", &host)) {
    } else if (ParseUint(argc, argv, &i, "--port", &port)) {
    } else if (ParseString(argc, argv, &i, "--sql", &sql)) {
    } else if (ParseUint(argc, argv, &i, "--deadline-ms", &n)) {
      query_options.deadline_millis = static_cast<uint32_t>(n);
    } else if (ParseUint(argc, argv, &i, "--max-rows", &n)) {
      query_options.max_rows = n;
    } else if (ParseUint(argc, argv, &i, "--max-patterns", &n)) {
      query_options.max_patterns = n;
    } else if (ParseUint(argc, argv, &i, "--max-memory", &n)) {
      query_options.max_memory_bytes = n;
    } else if (ParseUint(argc, argv, &i, "--timeout-ms", &n)) {
      conn_options.recv_timeout_millis = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--aware") == 0) {
      query_options.instance_aware = true;
    } else if (std::strcmp(argv[i], "--zombies") == 0) {
      query_options.zombies = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      query_options.profile = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdb_client --port N [--host H]\n"
          "                   (--ping | --stats | --sql \"SELECT ...\")\n"
          "                   [--deadline-ms N] [--max-rows N]\n"
          "                   [--max-patterns N] [--max-memory N]\n"
          "                   [--aware] [--zombies] [--profile]\n"
          "                   [--timeout-ms N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "pcdb_client: unknown flag %s (see --help)\n",
                   argv[i]);
      return 2;
    }
  }
  if (port == 0 || (!ping && !stats && sql.empty())) {
    std::fprintf(stderr,
                 "pcdb_client: need --port and one of --ping, --stats, "
                 "--sql (see --help)\n");
    return 2;
  }

  auto client = pcdb::Client::Connect(host, static_cast<uint16_t>(port),
                                      conn_options);
  if (!client.ok()) {
    std::fprintf(stderr, "pcdb_client: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (ping) {
    pcdb::Status status = client->Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "pcdb_client: ping: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  if (stats) {
    auto json = client->Stats();
    if (!json.ok()) {
      std::fprintf(stderr, "pcdb_client: stats: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }

  auto answer = client->Query(sql, query_options);
  if (!answer.ok()) {
    std::fprintf(stderr, "pcdb_client: query: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", answer->table.ToString().c_str());
  std::printf("-- cache_hit=%d degraded=%d data_ms=%.3f pattern_ms=%.3f\n",
              answer->done.cache_hit ? 1 : 0, answer->done.degraded ? 1 : 0,
              answer->done.data_millis, answer->done.pattern_millis);
  if (!answer->profile.empty()) {
    std::printf("%s\n", answer->profile.c_str());
  }
  return 0;
}
