// pcdb_client — one-shot command-line client for pcdbd.
//
//   pcdb_client --port N [--host H] --ping
//   pcdb_client --port N [--host H] --stats
//   pcdb_client --port N [--host H] --sql "SELECT ..." [--deadline-ms N]
//               [--max-rows N] [--max-patterns N] [--max-memory N]
//               [--aware] [--zombies] [--profile] [--timeout-ms N]
//   pcdb_client --port N --ingest TABLE --row "v1,v2,..." [--row ...]
//               [--tenant NAME] [--policy reject|retract] [--writer-id N]
//   pcdb_client --port N --punctuate TABLE --fields "c1,*,..." [--fields ...]
//               [--tenant NAME] [--writer-id N]
//   pcdb_client --port N --checkpoint
//
// --writer-id pins the client's idempotence identity (normally random
// per connection): two invocations with the same --writer-id send the
// same (writer_id, seq) pair, so the second is recognized as a
// duplicate and answered duplicate=1 without applying — the knob the
// crash-recovery CI stage uses to prove exactly-once apply.
// --checkpoint asks a WAL-enabled server to serialize its snapshot and
// truncate the log, printing the checkpoint LSN.
//
// --row cells are typed heuristically (integer, then float, then
// string); the server rejects a row whose types don't match the table
// schema. --fields cells are display fields ("*" = wildcard), exactly
// the pattern syntax the CLI prints. Both modes print the server's
// INGEST_RESULT counters on one line.
//
// --profile requests the server's per-query EXPLAIN ANALYZE profile
// (the ANSWER_PROFILE frame) and prints the JSON after the trailer.
//
// Queries print the annotated answer (rows + minimized pattern set) in
// the same format as the in-process CLI, plus the server-side trailer
// (cache hit, degraded flag, timings). Remote errors are printed with
// the exact status code and message the in-process evaluation would
// produce, and exit with code 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "server/client.h"

namespace {

bool ParseUint(int argc, char** argv, int* i, const char* flag,
               uint64_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = std::strtoull(arg + flag_len + 1, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = std::strtoull(argv[*i + 1], nullptr, 10);
    ++*i;
    return true;
  }
  return false;
}

bool ParseString(int argc, char** argv, int* i, const char* flag,
                 std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

// Integer, then float, then string — matching the column types the
// bundled workload uses. The server type-checks against the schema.
pcdb::Value ParseCell(const std::string& text) {
  if (!text.empty()) {
    char* end = nullptr;
    const long long as_int = std::strtoll(text.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      return pcdb::Value(static_cast<int64_t>(as_int));
    }
    const double as_double = std::strtod(text.c_str(), &end);
    if (end != nullptr && *end == '\0') return pcdb::Value(as_double);
  }
  return pcdb::Value(text);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  bool ping = false;
  bool stats = false;
  bool checkpoint = false;
  std::string sql;
  std::string ingest_table;
  std::string punctuate_table;
  std::vector<pcdb::Tuple> rows;
  std::vector<std::vector<std::string>> patterns;
  pcdb::ClientWriteOptions write_options;
  pcdb::ClientOptions conn_options;
  pcdb::ClientQueryOptions query_options;
  for (int i = 1; i < argc; ++i) {
    uint64_t n = 0;
    std::string s;
    if (ParseString(argc, argv, &i, "--host", &host)) {
    } else if (ParseUint(argc, argv, &i, "--port", &port)) {
    } else if (ParseString(argc, argv, &i, "--sql", &sql)) {
    } else if (ParseString(argc, argv, &i, "--ingest", &ingest_table)) {
    } else if (ParseString(argc, argv, &i, "--punctuate", &punctuate_table)) {
    } else if (ParseString(argc, argv, &i, "--tenant", &write_options.tenant)) {
    } else if (ParseString(argc, argv, &i, "--row", &s)) {
      pcdb::Tuple row;
      for (const std::string& cell : SplitCommas(s)) {
        row.push_back(ParseCell(cell));
      }
      rows.push_back(std::move(row));
    } else if (ParseString(argc, argv, &i, "--fields", &s)) {
      patterns.push_back(SplitCommas(s));
    } else if (ParseString(argc, argv, &i, "--policy", &s)) {
      if (s == "reject") {
        write_options.policy = pcdb::IngestRequest::kPolicyRejectRecord;
      } else if (s == "retract") {
        write_options.policy = pcdb::IngestRequest::kPolicyRetractPatterns;
      } else {
        std::fprintf(stderr,
                     "pcdb_client: --policy wants reject or retract\n");
        return 2;
      }
    } else if (ParseUint(argc, argv, &i, "--deadline-ms", &n)) {
      query_options.deadline_millis = static_cast<uint32_t>(n);
    } else if (ParseUint(argc, argv, &i, "--max-rows", &n)) {
      query_options.max_rows = n;
    } else if (ParseUint(argc, argv, &i, "--max-patterns", &n)) {
      query_options.max_patterns = n;
    } else if (ParseUint(argc, argv, &i, "--max-memory", &n)) {
      query_options.max_memory_bytes = n;
    } else if (ParseUint(argc, argv, &i, "--timeout-ms", &n)) {
      conn_options.recv_timeout_millis = static_cast<int>(n);
    } else if (ParseUint(argc, argv, &i, "--writer-id", &n)) {
      conn_options.writer_id = n;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint = true;
    } else if (std::strcmp(argv[i], "--aware") == 0) {
      query_options.instance_aware = true;
    } else if (std::strcmp(argv[i], "--zombies") == 0) {
      query_options.zombies = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      query_options.profile = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdb_client --port N [--host H]\n"
          "                   (--ping | --stats | --sql \"SELECT ...\")\n"
          "                   [--deadline-ms N] [--max-rows N]\n"
          "                   [--max-patterns N] [--max-memory N]\n"
          "                   [--aware] [--zombies] [--profile]\n"
          "                   [--timeout-ms N]\n"
          "   or: pcdb_client --port N --ingest TABLE --row \"v1,v2,...\"\n"
          "                   [--row ...] [--tenant NAME]\n"
          "                   [--policy reject|retract] [--writer-id N]\n"
          "   or: pcdb_client --port N --punctuate TABLE\n"
          "                   --fields \"c1,*,...\" [--fields ...]\n"
          "                   [--tenant NAME] [--writer-id N]\n"
          "   or: pcdb_client --port N --checkpoint\n");
      return 0;
    } else {
      std::fprintf(stderr, "pcdb_client: unknown flag %s (see --help)\n",
                   argv[i]);
      return 2;
    }
  }
  if (port == 0 || (!ping && !stats && !checkpoint && sql.empty() &&
                    ingest_table.empty() && punctuate_table.empty())) {
    std::fprintf(stderr,
                 "pcdb_client: need --port and one of --ping, --stats, "
                 "--checkpoint, --sql, --ingest, --punctuate (see --help)\n");
    return 2;
  }
  if (!ingest_table.empty() && rows.empty()) {
    std::fprintf(stderr, "pcdb_client: --ingest needs at least one --row\n");
    return 2;
  }
  if (!punctuate_table.empty() && patterns.empty()) {
    std::fprintf(stderr,
                 "pcdb_client: --punctuate needs at least one --fields\n");
    return 2;
  }

  auto client = pcdb::Client::Connect(host, static_cast<uint16_t>(port),
                                      conn_options);
  if (!client.ok()) {
    std::fprintf(stderr, "pcdb_client: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (ping) {
    pcdb::Status status = client->Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "pcdb_client: ping: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  if (stats) {
    auto json = client->Stats();
    if (!json.ok()) {
      std::fprintf(stderr, "pcdb_client: stats: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }

  if (checkpoint) {
    auto result = client->Checkpoint();
    if (!result.ok()) {
      std::fprintf(stderr, "pcdb_client: checkpoint: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("checkpoint lsn=%llu wal_segments_removed=%llu\n",
                static_cast<unsigned long long>(result->lsn),
                static_cast<unsigned long long>(result->wal_segments_removed));
    return 0;
  }

  if (!ingest_table.empty() || !punctuate_table.empty()) {
    auto ack = ingest_table.empty()
                   ? client->Punctuate(punctuate_table, std::move(patterns),
                                       write_options)
                   : client->Ingest(ingest_table, std::move(rows),
                                    write_options);
    if (!ack.ok()) {
      std::fprintf(stderr, "pcdb_client: %s: %s\n",
                   ingest_table.empty() ? "punctuate" : "ingest",
                   ack.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "ingested=%llu rejected=%llu violations=%llu punctuations=%llu "
        "retracted=%llu seq=%llu duplicate=%d\n",
        static_cast<unsigned long long>(ack->rows_ingested),
        static_cast<unsigned long long>(ack->rows_rejected),
        static_cast<unsigned long long>(ack->violations),
        static_cast<unsigned long long>(ack->punctuations),
        static_cast<unsigned long long>(ack->patterns_retracted),
        static_cast<unsigned long long>(ack->seq), ack->duplicate ? 1 : 0);
    return 0;
  }

  auto answer = client->Query(sql, query_options);
  if (!answer.ok()) {
    std::fprintf(stderr, "pcdb_client: query: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", answer->table.ToString().c_str());
  std::printf("-- cache_hit=%d degraded=%d data_ms=%.3f pattern_ms=%.3f\n",
              answer->done.cache_hit ? 1 : 0, answer->done.degraded ? 1 : 0,
              answer->done.data_millis, answer->done.pattern_millis);
  if (!answer->profile.empty()) {
    std::printf("%s\n", answer->profile.c_str());
  }
  return 0;
}
