// pcdb_loadgen — closed-loop load generator for pcdbd.
//
//   pcdb_loadgen --port N [--host H] [--connections C] [--requests R]
//                [--sql "SELECT ..."] [--deadline-ms N] [--aware]
//                [--zombies] [--no-warmup] [--write-pct P]
//                [--punctuate-pct P] [--tenant NAME]
//                [--endpoints HOST:PORT,HOST:PORT,...]
//
// --endpoints drives a multi-node target (several pcdb_coord front
// ends, or a coordinator next to a plain pcdbd for overhead A/Bs):
// worker w dials endpoint w mod E, so connections spread round-robin
// across the fleet. It replaces --host/--port when present.
//
// Opens C concurrent connections, each issuing its share of R requests
// back-to-back (closed loop: the next request is sent only after the
// previous answer fully arrived), and reports client-observed latency
// percentiles, throughput, errors and cache hits. One machine-readable
//   {"bench":"pcdbd_loadgen",...}
// line goes to stdout for tools/bench_record.sh; the methodology is
// documented in EXPERIMENTS.md.
//
// Mixed read/write mode: --write-pct turns that percentage of requests
// into single-row INGESTs against Warnings (synthetic rows in weeks >= 3
// so no completeness promise is violated); --punctuate-pct turns that
// percentage into PUNCTUATEs asserting day-constant patterns
// ("p<i>",*,*,*). The punctuated signature {day} is incomparable with
// the default query's constant mask over Warnings ({week}), so
// punctuate-only write mixes leave cached answers valid — the reported
// cache_hit_rate is the signature-keyed invalidation precision measure
// recorded in BENCH_PR6.json. Row ingests bump the table epoch
// (wholesale invalidation), so --write-pct drives the hit rate down;
// the delta between the two mixes is the point of the experiment.
// Latency percentiles are computed over queries only; write latencies
// are reported separately (write_p95_ms).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dist/coordinator.h"
#include "server/client.h"

namespace {

bool ParseUint(int argc, char** argv, int* i, const char* flag,
               uint64_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = std::strtoull(arg + flag_len + 1, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = std::strtoull(argv[*i + 1], nullptr, 10);
    ++*i;
    return true;
  }
  return false;
}

bool ParseString(int argc, char** argv, int* i, const char* flag,
                 std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) {
    *out = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

// q-quantile of an unsorted sample (0 <= q <= 1); empty -> 0.
double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double idx = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

struct WorkerResult {
  std::vector<double> latencies_ms;        // queries only
  std::vector<double> write_latencies_ms;  // ingests + punctuates
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t writes = 0;
  uint64_t write_errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  uint64_t connections = 8;
  uint64_t requests = 200;
  // The paper's running example Q_hw (warnings on hardware-maintained
  // elements in week 2) — a 3-way join exercising both the data and the
  // pattern-reasoning paths.
  std::string sql =
      "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
      "JOIN Teams T ON M.responsible=T.name "
      "WHERE W.week=2 AND T.specialization='hardware'";
  bool warmup = true;
  uint64_t write_pct = 0;
  uint64_t punctuate_pct = 0;
  pcdb::ClientQueryOptions query_options;
  pcdb::ClientWriteOptions write_options;
  std::vector<pcdb::ShardEndpoint> endpoints;
  for (int i = 1; i < argc; ++i) {
    uint64_t n = 0;
    std::string s;
    if (ParseString(argc, argv, &i, "--host", &host)) {
    } else if (ParseUint(argc, argv, &i, "--port", &port)) {
    } else if (ParseString(argc, argv, &i, "--endpoints", &s)) {
      auto parsed = pcdb::ParseEndpoints(s);
      if (!parsed.ok()) {
        std::fprintf(stderr, "pcdb_loadgen: bad --endpoints: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      endpoints = *std::move(parsed);
    } else if (ParseUint(argc, argv, &i, "--connections", &connections)) {
    } else if (ParseUint(argc, argv, &i, "--requests", &requests)) {
    } else if (ParseString(argc, argv, &i, "--sql", &sql)) {
    } else if (ParseUint(argc, argv, &i, "--deadline-ms", &n)) {
      query_options.deadline_millis = static_cast<uint32_t>(n);
    } else if (std::strcmp(argv[i], "--aware") == 0) {
      query_options.instance_aware = true;
    } else if (std::strcmp(argv[i], "--zombies") == 0) {
      query_options.zombies = true;
    } else if (ParseUint(argc, argv, &i, "--write-pct", &write_pct)) {
    } else if (ParseUint(argc, argv, &i, "--punctuate-pct", &punctuate_pct)) {
    } else if (ParseString(argc, argv, &i, "--tenant",
                           &write_options.tenant)) {
    } else if (std::strcmp(argv[i], "--no-warmup") == 0) {
      warmup = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: pcdb_loadgen --port N [--host H] [--connections C]\n"
          "                    [--requests R] [--sql \"SELECT ...\"]\n"
          "                    [--deadline-ms N] [--aware] [--zombies]\n"
          "                    [--no-warmup] [--write-pct P]\n"
          "                    [--punctuate-pct P] [--tenant NAME]\n"
          "                    [--endpoints HOST:PORT,HOST:PORT,...]\n");
      return 0;
    } else {
      std::fprintf(stderr, "pcdb_loadgen: unknown flag %s (see --help)\n",
                   argv[i]);
      return 2;
    }
  }
  if (endpoints.empty()) {
    if (port == 0) {
      std::fprintf(stderr,
                   "pcdb_loadgen: need --port or --endpoints (see --help)\n");
      return 2;
    }
    endpoints.push_back({host, static_cast<uint16_t>(port)});
  }
  if (connections == 0) connections = 1;
  if (requests < connections) requests = connections;
  if (write_pct + punctuate_pct > 100) {
    std::fprintf(stderr,
                 "pcdb_loadgen: --write-pct + --punctuate-pct over 100\n");
    return 2;
  }

  std::printf(
      "pcdb_loadgen: %llu requests over %llu connections to %s:%u%s\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(connections), endpoints[0].host.c_str(),
      static_cast<unsigned>(endpoints[0].port),
      endpoints.size() > 1
          ? (" (+" + std::to_string(endpoints.size() - 1) + " more)").c_str()
          : "");
  std::printf("pcdb_loadgen: sql: %s\n", sql.c_str());

  // One warmup query populates the answer cache so the measured run
  // reports steady-state serving latency (see EXPERIMENTS.md; disable
  // with --no-warmup to measure the cold path).
  if (warmup) {
    auto probe = pcdb::Client::Connect(endpoints[0].host, endpoints[0].port);
    if (!probe.ok()) {
      std::fprintf(stderr, "pcdb_loadgen: connect: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
    auto answer = probe->Query(sql, query_options);
    if (!answer.ok()) {
      std::fprintf(stderr, "pcdb_loadgen: warmup query: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
  }

  const size_t num_workers = static_cast<size_t>(connections);
  std::vector<WorkerResult> results(num_workers);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    pcdb::ThreadPool pool(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      // Worker w issues requests w, w+C, w+2C, ... so the total is
      // exactly `requests` even when C does not divide it.
      pool.Submit([w, num_workers, requests, &endpoints, &sql,
                   &query_options, &results, write_pct, punctuate_pct,
                   &write_options] {
        WorkerResult& result = results[w];
        // Round-robin across the endpoint fleet: worker w dials
        // endpoint w mod E.
        const pcdb::ShardEndpoint& ep = endpoints[w % endpoints.size()];
        auto client = pcdb::Client::Connect(ep.host, ep.port);
        if (!client.ok()) {
          for (uint64_t r = w; r < requests; r += num_workers) {
            ++result.errors;
          }
          return;
        }
        for (uint64_t r = w; r < requests; r += num_workers) {
          // Deterministic mix: request index mod 100 decides the kind,
          // so the write share is exact regardless of scheduling.
          const uint64_t bucket = r % 100;
          if (bucket < write_pct + punctuate_pct) {
            const auto start = std::chrono::steady_clock::now();
            // Ingested rows live in weeks >= 3 with "w<i>" days;
            // punctuated patterns promise "p<i>" days — disjoint, so
            // neither kind ever violates a promise the other made.
            auto ack =
                bucket < write_pct
                    ? client->Ingest(
                          "Warnings",
                          {pcdb::Tuple{
                              pcdb::Value("w" + std::to_string(r % 7)),
                              pcdb::Value(static_cast<int64_t>(3 + r % 997)),
                              pcdb::Value("tw" + std::to_string(r)),
                              pcdb::Value("synthetic load")}},
                          write_options)
                    : client->Punctuate(
                          "Warnings",
                          {{"p" + std::to_string(r % 7), "*", "*", "*"}},
                          write_options);
            const auto stop = std::chrono::steady_clock::now();
            if (!ack.ok()) {
              ++result.write_errors;
              continue;
            }
            ++result.writes;
            result.write_latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(stop - start)
                    .count());
            continue;
          }
          const auto start = std::chrono::steady_clock::now();
          auto answer = client->Query(sql, query_options);
          const auto stop = std::chrono::steady_clock::now();
          if (!answer.ok()) {
            ++result.errors;
            continue;
          }
          if (answer->done.cache_hit) ++result.cache_hits;
          result.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(stop - start)
                  .count());
        }
      });
    }
    pool.Wait();
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  std::vector<double> latencies;
  std::vector<double> write_latencies;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t writes = 0;
  uint64_t write_errors = 0;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    write_latencies.insert(write_latencies.end(),
                           result.write_latencies_ms.begin(),
                           result.write_latencies_ms.end());
    errors += result.errors;
    cache_hits += result.cache_hits;
    writes += result.writes;
    write_errors += result.write_errors;
  }
  const size_t ok = latencies.size();
  const double p50 = Quantile(latencies, 0.5);
  const double p95 = Quantile(latencies, 0.95);
  const double p99 = Quantile(latencies, 0.99);
  const double qps = wall_ms > 0 ? 1000.0 * static_cast<double>(ok) / wall_ms
                                 : 0;

  const double cache_hit_rate =
      ok > 0 ? static_cast<double>(cache_hits) / static_cast<double>(ok) : 0;
  const double write_p95 = Quantile(write_latencies, 0.95);

  std::printf("pcdb_loadgen: %zu ok, %llu errors, %llu cache hits\n", ok,
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(cache_hits));
  if (writes + write_errors > 0) {
    std::printf("pcdb_loadgen: %llu writes ok, %llu write errors, "
                "write_p95=%.3fms\n",
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(write_errors), write_p95);
  }
  std::printf(
      "pcdb_loadgen: p50=%.3fms p95=%.3fms p99=%.3fms qps=%.1f wall=%.1fms\n",
      p50, p95, p99, qps, wall_ms);

  char extra[512];
  std::snprintf(extra, sizeof(extra),
                ",\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"qps\":%.1f,"
                "\"errors\":%llu,\"cache_hits\":%llu,"
                "\"cache_hit_rate\":%.4f,\"writes\":%llu,"
                "\"write_errors\":%llu,\"write_p95_ms\":%.3f",
                p95, p99, qps, static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(cache_hits), cache_hit_rate,
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(write_errors), write_p95);
  std::printf(
      "{\"bench\":\"pcdbd_loadgen\",\"method\":\"closed_loop\",\"n\":%zu,"
      "\"threads\":%zu,\"median_ms\":%.3f%s}\n",
      ok, num_workers, p50, extra);
  return errors > 0 ? 1 : 0;
}
