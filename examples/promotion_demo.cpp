// Walkthrough of pattern promotion (§5.1) and zombie patterns
// (Appendix E) on the paper's own micro-examples, with search statistics.

#include <iostream>

#include "pattern/minimize.h"
#include "pattern/promotion.h"
#include "pattern/zombie.h"

namespace {

using namespace pcdb;

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

}  // namespace

int main() {
  // --- §5.1 extended example -------------------------------------------
  // R(A,B,C) with patterns p1 = (a,c,∗), p2 = (b,∗,d), p3 = (a,e,d);
  // R'(A',B') with rows (a,g), (b,g), (c,h) and pattern p0 = (∗,g);
  // join R.A = R'.A'.
  PatternSet r_patterns;
  r_patterns.Add(P({"a", "c", "*"}));
  r_patterns.Add(P({"b", "*", "d"}));
  r_patterns.Add(P({"a", "e", "d"}));
  PatternSet rp_patterns;
  rp_patterns.Add(P({"*", "g"}));
  Table rp_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  PCDB_CHECK(rp_data.Append({"a", "g"}).ok());
  PCDB_CHECK(rp_data.Append({"b", "g"}).ok());
  PCDB_CHECK(rp_data.Append({"c", "h"}).ok());
  Table r_data(Schema({{"A", ValueType::kString},
                       {"B", ValueType::kString},
                       {"C", ValueType::kString}}));

  std::cout << "R patterns:\n" << r_patterns.ToString()
            << "R' patterns:\n" << rp_patterns.ToString()
            << "R' data:\n" << rp_data.ToString() << "\n";

  PromotionStats stats;
  auto promoted = PromoteOneDirection(rp_patterns, 0, rp_data, r_patterns, 0,
                                      PromotionOptions{}, &stats);
  std::cout << "Promotion R' -> R:\n";
  std::cout << "  allowable domain for A' wrt p0=(∗,g): {a, b} (read from "
               "R' data)\n";
  for (const auto& [unifier, p0_index] : promoted) {
    std::cout << "  promoted: " << unifier.ToString() << " · "
              << rp_patterns[p0_index].ToString() << "\n";
  }
  std::cout << "  attempts=" << stats.attempts
            << " choice sets tested=" << stats.choice_sets_tested
            << " (naive: " << stats.naive_choice_sets << ")"
            << " unification steps=" << stats.unification_steps << "\n\n";

  // --- Full instance-aware join + minimization --------------------------
  PatternSet joined = InstanceAwarePatternJoin(r_patterns, 0, r_data,
                                               rp_patterns, 0, rp_data);
  std::cout << "Instance-aware join output (" << joined.size()
            << " patterns), minimized:\n"
            << Minimize(joined).ToString() << "\n";

  // --- Zombie patterns (Appendix E, Example 10) --------------------------
  std::cout << "Zombies for σ[spec=hardware](Teams) with domain "
               "{hardware, software, network}:\n"
            << ZombiesForSelectConst(
                   2, 1, Value("hardware"),
                   {Value("hardware"), Value("software"), Value("network")})
                   .ToString()
            << "\nThese look meaningless — no software team survives the\n"
               "selection — but a later join with a complete Best_teams\n"
               "table containing software teams can only promote to (∗,…,∗)\n"
               "if the zombie assertions are available (Appendix E).\n";
  return 0;
}
