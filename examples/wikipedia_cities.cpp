// The Wikipedia use case (§1, §4.2, Appendix B): counting cities per
// country over crowd-sourced data that is only complete for some
// countries.
//
// Runs SELECT country, COUNT(*) FROM city GROUP BY country over the
// synthetic Wikipedia database and shows which counts are guaranteed
// complete AND correct — the countries for which Wikipedia carries a
// "complete list of cities" statement — and which counts are mere lower
// bounds.

#include <algorithm>
#include <iostream>

#include "pattern/annotated_eval.h"
#include "sql/planner.h"
#include "workloads/wikipedia.h"

int main() {
  using namespace pcdb;

  WikipediaConfig config;
  config.num_cities = 20000;  // keep the demo snappy
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);

  std::cout << "City completeness statements scraped from Wikipedia:\n"
            << adb.patterns("city").ToString() << "\n";

  const std::string sql =
      "SELECT country, COUNT(*) AS cities FROM city GROUP BY country";
  std::cout << "Query: " << sql << "\n\n";
  auto plan = PlanSql(sql, adb.database());
  if (!plan.ok()) {
    std::cerr << "planning failed: " << plan.status() << "\n";
    return 1;
  }
  auto result = EvaluateAnnotated(*plan, adb);
  if (!result.ok()) {
    std::cerr << "evaluation failed: " << result.status() << "\n";
    return 1;
  }

  // Split the answer rows into guaranteed-correct counts and lower
  // bounds, by checking which rows the computed query patterns cover.
  Table sorted = result->data;
  sorted.Sort();
  std::cout << "country                count   guarantee\n"
            << "-----------------------------------------------\n";
  size_t guaranteed = 0;
  size_t shown = 0;
  for (const Tuple& row : sorted.rows()) {
    bool complete = result->patterns.AnySubsumesTuple(row);
    if (complete) ++guaranteed;
    // Print the guaranteed rows and a few of the rest.
    if (complete || shown < 8) {
      std::string name = row[0].ToString();
      name.resize(22, ' ');
      std::string count = row[1].ToString();
      count.resize(7, ' ');
      std::cout << name << " " << count << " "
                << (complete ? "exact (complete & correct)"
                             : "lower bound only")
                << "\n";
      if (!complete) ++shown;
    }
  }
  std::cout << "...\n\n"
            << guaranteed << " of " << sorted.num_rows()
            << " country counts are guaranteed exact by the completeness\n"
               "statements; for the rest, users should consult additional\n"
               "sources (e.g. the Mondial database or the CIA world "
               "factbook).\n";
  return 0;
}
