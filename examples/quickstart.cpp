// Quickstart: the paper's running example end to end.
//
// Builds the network-maintenance database D_maint (Table 1), runs the
// query Q_hw ("all week-2 warnings for elements maintained by a hardware
// team") and prints the answer annotated with completeness patterns —
// first with the schema-level pattern algebra (Table 3), then with the
// instance-aware algebra whose promotion summarizes the patterns
// (Table 5).

#include <iostream>

#include "pattern/annotated_eval.h"
#include "pattern/diagnosis.h"
#include "workloads/maintenance_example.h"

int main() {
  using namespace pcdb;

  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  std::cout << "=== Base tables with completeness patterns (Table 1) ===\n";
  for (const std::string& name : adb.database().TableNames()) {
    auto annotated = adb.GetAnnotated(name);
    std::cout << name << ":\n" << annotated->ToString() << "\n";
  }

  ExprPtr query = MakeHardwareWarningsQuery();
  std::cout << "=== Query Q_hw ===\n" << query->ToString() << "\n\n";

  // Schema-level pattern algebra (§4).
  auto result = EvaluateAnnotated(query, adb);
  if (!result.ok()) {
    std::cerr << "evaluation failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "=== Annotated answer, schema-level algebra (Table 3) ===\n"
            << result->ToString() << "\n";

  // Instance-aware algebra (§5): promotion inspects the data and infers
  // that A and B are the only hardware teams, so the per-team patterns
  // summarize to '*'.
  AnnotatedEvalOptions options;
  options.instance_aware = true;
  auto aware = EvaluateAnnotated(query, adb, options);
  if (!aware.ok()) {
    std::cerr << "evaluation failed: " << aware.status() << "\n";
    return 1;
  }
  std::cout << "=== Annotated answer, instance-aware algebra (Table 5) ===\n"
            << aware->ToString() << "\n";

  std::cout
      << "Reading the patterns: on Monday and Wednesday the retrieved\n"
         "warnings are guaranteed to be ALL warnings that occurred; for\n"
         "Tuesday no such guarantee exists (the Tuesday feed has not\n"
         "fully loaded), so the tw83 warning shown may have company.\n\n";

  // Why-provenance pinpoints the source to consult (§1: "users can then
  // try to consult specific additional data sources").
  auto report = DiagnoseIncompleteness(query, adb);
  if (report.ok()) {
    std::cout << "=== Incompleteness diagnosis ===\n"
              << report->ToString();
  }
  return 0;
}
