// SQL front end demo: run any supported single-block SELECT against the
// paper's maintenance database (or a database stored on disk) and get
// the answer annotated with its completeness patterns.
//
// Usage:
//   sql_completeness                         # runs Q_hw and two variants
//   sql_completeness "SELECT ... FROM ..."   # runs your query
//
// Options:
//   --instance-aware   enable the §5 promotion algebra
//   --db <dir>         load the database from a storage directory
//                      (pattern/storage.h format) instead of the
//                      built-in maintenance example
//   --save <dir>       persist the database to <dir> before querying

#include <iostream>
#include <string>
#include <vector>

#include "pattern/annotated_eval.h"
#include "pattern/storage.h"
#include "pattern/summary.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace {

using namespace pcdb;

int RunQuery(const AnnotatedDatabase& adb, const std::string& sql,
             bool instance_aware) {
  std::cout << "SQL> " << sql << "\n";
  auto plan = PlanSql(sql, adb.database());
  if (!plan.ok()) {
    std::cerr << "error: " << plan.status() << "\n";
    return 1;
  }
  std::cout << "plan: " << (*plan)->ToString() << "\n";
  AnnotatedEvalOptions options;
  options.instance_aware = instance_aware;
  AnnotatedEvalInfo info;
  auto result = EvaluateAnnotated(*plan, adb, options, &info);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->ToString() << Summarize(*result).ToString() << "\n"
            << "(query: " << info.data_millis
            << " ms, completeness: " << info.pattern_millis << " ms)\n\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool instance_aware = false;
  std::string load_dir;
  std::string save_dir;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--instance-aware") {
      instance_aware = true;
    } else if (arg == "--db" && i + 1 < argc) {
      load_dir = argv[++i];
    } else if (arg == "--save" && i + 1 < argc) {
      save_dir = argv[++i];
    } else {
      queries.push_back(arg);
    }
  }
  AnnotatedDatabase adb;
  if (load_dir.empty()) {
    adb = MakeMaintenanceDatabase();
  } else {
    auto loaded = LoadAnnotatedDatabase(load_dir);
    if (!loaded.ok()) {
      std::cerr << "cannot load database: " << loaded.status() << "\n";
      return 1;
    }
    adb = std::move(loaded).ValueOrDie();
    std::cout << "loaded database from " << load_dir << "\n";
  }
  if (!save_dir.empty()) {
    Status saved = SaveAnnotatedDatabase(adb, save_dir);
    if (!saved.ok()) {
      std::cerr << "cannot save database: " << saved << "\n";
      return 1;
    }
    std::cout << "saved database to " << save_dir << "\n";
  }
  if (queries.empty()) {
    queries = {
        "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
        "JOIN Teams T ON M.responsible=T.name "
        "WHERE W.week=2 AND T.specialization='hardware'",
        "SELECT day, ID, message FROM Warnings WHERE week=1",
        "SELECT responsible, COUNT(*) AS elements FROM Maintenance "
        "GROUP BY responsible",
    };
  }
  std::cout << "Tables: Warnings(day, week, ID, message), "
               "Maintenance(ID, responsible, reason), "
               "Teams(name, specialization)\n"
            << (instance_aware ? "mode: instance-aware (§5 promotion)\n\n"
                               : "mode: schema-level pattern algebra\n\n");
  int status = 0;
  for (const std::string& sql : queries) {
    status |= RunQuery(adb, sql, instance_aware);
  }
  return status;
}
