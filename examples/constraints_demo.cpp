// Constraint-strengthened completeness (§7 future work, implemented):
// key constraints turn point lookups into provably complete answers,
// and inclusion dependencies against complete reference tables bound
// attribute domains for zombie generation.

#include <iostream>

#include "pattern/annotated_eval.h"
#include "pattern/constraints.h"
#include "pattern/summary.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace {

using namespace pcdb;

void Run(const AnnotatedDatabase& adb, const std::string& sql,
         const AnnotatedEvalOptions& options = {}) {
  auto plan = PlanSql(sql, adb.database());
  PCDB_CHECK(plan.ok()) << plan.status().ToString();
  auto result = EvaluateAnnotated(*plan, adb, options);
  PCDB_CHECK(result.ok()) << result.status().ToString();
  std::cout << "SQL> " << sql << "\n"
            << result->ToString() << Summarize(*result).ToString() << "\n\n";
}

}  // namespace

int main() {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();

  std::cout << "=== Keyed lookups before and after the key constraint ===\n";
  // Maintenance has no pattern covering tw59 (team D does not export its
  // data), so a lookup for tw59 carries no guarantee...
  const std::string lookup =
      "SELECT * FROM Maintenance WHERE ID='tw59'";
  Run(adb, lookup);

  // ... but (ID, reason) is a key of Maintenance: at most one record per
  // maintenance event exists, and it is already stored. Deriving key
  // patterns makes every stored event's slice complete.
  PCDB_CHECK(
      ApplyKeyConstraint(&adb, {"Maintenance", {"ID", "reason"}}).ok());
  std::cout << "--- after ApplyKeyConstraint(Maintenance, {ID, reason}) "
               "---\n";
  Run(adb, "SELECT * FROM Maintenance WHERE ID='tw59' AND "
           "reason='software crash'");

  std::cout << "=== Inclusion dependency feeding zombie generation ===\n";
  // Maintenance.responsible ⊆ Teams.name, and the Teams table is fully
  // complete — so A, B, C, D are the only possible responsible teams.
  PCDB_CHECK(ApplyInclusionConstraint(
                 &adb, {"Maintenance", "responsible", "Teams", "name"})
                 .ok());
  const std::vector<Value>* domain = adb.domains().Lookup("responsible");
  std::cout << "derived domain for Maintenance.responsible: ";
  for (const Value& v : *domain) std::cout << v << " ";
  std::cout << "\n\n";

  AnnotatedEvalOptions zombie_options;
  zombie_options.zombies = true;
  zombie_options.minimize_each_step = false;
  std::cout << "with zombies enabled, a selection on responsible='A' also\n"
               "asserts (vacuous) completeness for the other teams:\n\n";
  Run(adb, "SELECT * FROM Maintenance WHERE responsible='A'",
      zombie_options);
  return 0;
}
