// Network data-warehouse monitoring (§1's Darkstar-style scenario).
//
// A warehouse ingests per-day warning feeds from an operational system.
// Feeds arrive asynchronously; punctuation-style completeness patterns
// are appended as each (day, region) feed finishes loading. Analysts
// query the warehouse at any time and see exactly which slices of their
// answers are final.

#include <iostream>

#include "common/random.h"
#include "pattern/annotated_eval.h"
#include "pattern/feed.h"
#include "sql/planner.h"

namespace {

using namespace pcdb;

/// Simulates the loader: ingests the feed for (day, region) through the
/// FeedManager and punctuates it, as the paper proposes for automated
/// ingestion (§6, "Source of Completeness Patterns").
void LoadFeed(FeedManager* feed, Rng* rng, const std::string& day,
              const std::string& region) {
  int warnings = static_cast<int>(rng->UniformInt(2, 6));
  for (int i = 0; i < warnings; ++i) {
    std::string element =
        "ne" + std::to_string(rng->UniformInt(0, 9));
    std::string message = rng->Bernoulli(0.5) ? "high voltage" : "overheat";
    PCDB_CHECK(
        feed->Ingest("warnings", {day, region, element, message}).ok());
  }
  PCDB_CHECK(feed->Punctuate("warnings", {day, region, "*", "*"}).ok());
  std::cout << "loader: feed (" << day << ", " << region << ") loaded, "
            << warnings << " warnings; punctuation (" << day << ", "
            << region << ", *, *) asserted\n";
}

void RunAnalystQuery(const AnnotatedDatabase& adb) {
  const std::string sql =
      "SELECT day, region, COUNT(*) AS n FROM warnings "
      "GROUP BY day, region";
  auto plan = PlanSql(sql, adb.database());
  PCDB_CHECK(plan.ok()) << plan.status().ToString();
  auto result = EvaluateAnnotated(*plan, adb);
  PCDB_CHECK(result.ok()) << result.status().ToString();
  std::cout << "\nanalyst: " << sql << "\n";
  Table sorted = result->data;
  sorted.Sort();
  for (const Tuple& row : sorted.rows()) {
    bool final_count = result->patterns.AnySubsumesTuple(row);
    std::cout << "  " << row[0] << " " << row[1] << ": " << row[2]
              << (final_count ? "  [final]" : "  [still loading]") << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  AnnotatedDatabase adb;
  PCDB_CHECK(adb.CreateTable("warnings",
                             Schema({{"day", ValueType::kString},
                                     {"region", ValueType::kString},
                                     {"element", ValueType::kString},
                                     {"message", ValueType::kString}}))
                 .ok());
  Rng rng(2015);
  FeedManager feed(&adb);

  // Monday's feeds arrive from both regions.
  LoadFeed(&feed, &rng, "Mon", "east");
  LoadFeed(&feed, &rng, "Mon", "west");
  RunAnalystQuery(adb);

  // Tuesday: the east feed lands; the west feed is delayed, but two
  // early west records trickle in outside any completeness guarantee.
  LoadFeed(&feed, &rng, "Tue", "east");
  PCDB_CHECK(
      feed.Ingest("warnings", {"Tue", "west", "ne3", "overheat"}).ok());
  PCDB_CHECK(
      feed.Ingest("warnings", {"Tue", "west", "ne7", "high voltage"}).ok());
  std::cout << "loader: 2 early (Tue, west) records arrived; feed still "
               "incomplete, no punctuation\n";
  RunAnalystQuery(adb);

  // The delayed feed completes: the loader only needs to punctuate —
  // the counts flip to [final] without recomputation logic in the
  // analyst's tooling.
  PCDB_CHECK(
      feed.Ingest("warnings", {"Tue", "west", "ne1", "overheat"}).ok());
  PCDB_CHECK(feed.Punctuate("warnings", {"Tue", "west", "*", "*"}).ok());
  std::cout << "loader: (Tue, west) feed completed; punctuation asserted\n";
  RunAnalystQuery(adb);

  // A late Monday record would violate the Monday punctuation; the feed
  // manager detects and rejects it.
  Status late = feed.Ingest("warnings", {"Mon", "east", "ne5", "overheat"});
  std::cout << "late (Mon, east) record: " << late.ToString() << "\n";
  return 0;
}
