// Collaborative editing (§1's Wikipedia scenario): in a crowd-sourced
// database anyone can add records at any time, so completeness claims
// made by the community (the {{Complete list}} template) can be
// invalidated by later edits. The FeedManager's retract policy keeps the
// metadata honest: an edit inside a claimed-complete slice withdraws the
// claim, and query guarantees degrade gracefully instead of lying.

#include <iostream>

#include "pattern/annotated_eval.h"
#include "pattern/feed.h"
#include "pattern/summary.h"
#include "sql/planner.h"
#include "workloads/wikipedia.h"

namespace {

using namespace pcdb;

void CountCities(const AnnotatedDatabase& adb, const std::string& country) {
  auto plan = PlanSql(
      "SELECT country, COUNT(*) AS cities FROM city WHERE country='" +
          country + "' GROUP BY country",
      adb.database());
  PCDB_CHECK(plan.ok()) << plan.status().ToString();
  auto result = EvaluateAnnotated(*plan, adb);
  PCDB_CHECK(result.ok()) << result.status().ToString();
  for (const Tuple& row : result->data.rows()) {
    bool exact = result->patterns.AnySubsumesTuple(row);
    std::cout << "  cities in " << country << ": " << row[1]
              << (exact ? "  [exact: community claims the list complete]"
                        : "  [lower bound: no completeness claim]")
              << "\n";
  }
}

}  // namespace

int main() {
  WikipediaConfig config;
  config.num_cities = 8000;
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  // Crowd edits are trusted over stale claims: retract on violation.
  FeedManager feed(&adb, FeedViolationPolicy::kRetractPatterns);

  std::cout << "The German Wikipedia community maintains a "
               "{{Complete list}} template on its city list:\n";
  CountCities(adb, "Germany");
  CountCities(adb, "France");  // no claim exists for France

  std::cout << "\nAn editor discovers a missing German city and adds "
               "it:\n";
  PCDB_CHECK(
      feed.Ingest("city", {"Neustadt-an-der-Lücke", "Germany",
                           "State_7", "County_3"})
          .ok());
  std::cout << "  edit accepted; " << feed.stats().patterns_retracted
            << " completeness claim(s) retracted\n\n";

  std::cout << "The count is now reported as a lower bound again:\n";
  CountCities(adb, "Germany");

  std::cout << "\nAfter review, the community re-asserts the template:\n";
  PCDB_CHECK(feed.Punctuate("city", {"*", "Germany", "*", "*"}).ok());
  CountCities(adb, "Germany");
  return 0;
}
